"""Batched (vectorized) evaluation of Srikanth-Toueg scenarios.

This is the *mechanism* half of the simulation kernel split described in
``docs/kernel.md``; the policy half (selection and static eligibility) is
:mod:`repro.sim.kernel`.  Two engines live here, sharing one finalization
seam (:func:`_finalize_lane`: batch-level statistics, index-stepped message
sampling, recorder replay):

* the **lockstep array path** (phases 1/2 below) serves the authenticated
  algorithm under deterministic attacks and deterministic non-zero delay
  modes -- including drifting (``random``-mode) clocks, whose piecewise
  rate trajectories are reconstructed up front and inverted by a
  vectorized segment walk (:class:`_DriftTables`) -- all lanes of a
  replication block as NumPy array rows;
* the **exact-replay path** (:class:`_ExactReplay`) serves the echo
  algorithm, the ``uniform`` and ``min`` delay modes, and every randomized
  adversary (``forge_flood`` plus the ``random_*`` strategies): a lean
  per-lane discrete replay that mirrors the event queue's ``(time, seq)``
  ordering by construction -- sequence numbers are allocated in the event
  loop's exact push order (which is what resolves ``min``-mode zero-delay
  cascades exactly), the network RNG (``random.Random(seed + 1)``) is
  consumed in the exact global send order, and each randomized adversary's
  ``random.Random(seed + pid)`` stream is replayed draw for draw through a
  per-behaviour draw table (see :meth:`_ExactReplay._broadcast`).  Being
  order-exact by construction, it needs none of the tie-breaking guards of
  the array path; its speed comes from eliminating the event loop's
  per-message constants (envelope/event allocation, handler dispatch,
  signature verification, per-message recorder calls) rather than from
  arrays.

The lockstep array path evaluates a whole run round by round:

1. **Phase 1 (arrays).**  Per round, every actor's timer instant, every
   signature's arrival time and every acceptance instant are computed as
   NumPy array operations, using exactly the float expressions the event
   loop's objects evaluate (``FixedRateClock.read``/``invert``,
   ``LogicalClock.set_to``, ``Network.send`` clamping), so results agree
   bit for bit.  Announce decisions couple processes at shared instants;
   they are resolved by a Kleene fixpoint whose convergence to the event
   loop's unique execution is argued in ``docs/kernel.md``.  Executions
   that leave the proven regime (out-of-order rounds, adversary sends
   racing a timer's own arming instant, non-convergence) raise
   :class:`LaneFallback` instead of guessing.
2. **Phase 2 (timeline).**  Message *batches* (one per broadcast, not one
   per message) are laid out in the event loop's exact global order; tied
   instants that the array pass cannot order -- several acceptances at one
   instant, and always the final instant, where the run is cut mid-instant
   -- are resolved by a small exact *walk* that replays the event queue's
   insertion-order tie-breaking for just that instant.
3. **Replay.**  The per-acceptance adjustments are fed, in order, into a
   real :class:`~repro.sim.recorder.OnlineMetricsRecorder` (the same class
   the event loop uses), message statistics are computed arithmetically
   from the batch layout, and sampled messages are selected by index and
   handed over via
   :meth:`~repro.sim.recorder.OnlineMetricsRecorder.ingest_message_samples`.
   Everything downstream of the recorder seam is therefore shared code.

Lanes: several single-replication scenarios that differ only in seed (the
shape :func:`~repro.workloads.scenarios.replicate` produces) are evaluated
in lockstep -- the static layout (roles, destination sets, delay matrix) is
built once and phase 1's clock/arrival arrays carry a leading lane axis.
A lane that falls back never touches a recorder, so the caller can re-run
exactly the failed lanes on the event loop.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from random import Random
from typing import Optional

from .. import obs
from .clocks import FixedRateClock, drifting_clock, spread_offsets
from .kernel import numpy_or_none
from .network import NetworkStats
from .recorder import MessageSample, OnlineMetricsRecorder, OnlineMetricsSummary
from .trace import ResyncEvent

#: Mirrors of the adversary constants in :mod:`repro.faults.behaviors` /
#: :mod:`repro.faults.strategies`.  The sim layer cannot import the faults
#: layer (it sits above), so the values are duplicated here and pinned
#: against the originals by a parity test.
EAGER_FACTOR = 0.75
EAGER_MAX_ROUND = 200
CRASH_PERIODS = 2.5
#: ``ForgeAndFlood``'s tick interval and ``randint`` round ceiling.
FLOOD_INTERVAL = 0.05
FLOOD_MAX_ROUND = 200
#: ``random_silence``'s per-broadcast drop probability and
#: ``random_two_faced``'s fast-group bias (``RANDOM_DROP_PROBABILITY`` /
#: ``RANDOM_FAST_BIAS`` in :mod:`repro.faults.behaviors`).
RANDOM_DROP_PROBABILITY = 0.5
RANDOM_FAST_BIAS = 0.5
#: Default ``max_round_lookahead`` of both broadcast trackers.
TRACKER_LOOKAHEAD = 1000

#: Faulty roles whose behaviour consumes a per-adversary RNG stream; each
#: declares its exact draw table in :meth:`_ExactReplay._broadcast`.
_RANDOM_ROLES = frozenset(["random_silence", "random_two_faced", "random_laggard"])

_SIG = "SignedRound"
_BUNDLE = "SignatureBundle"
_INIT = "InitMessage"
_ECHO = "EchoMessage"
_GARBAGE = "GarbageMessage"


class LaneFallback(Exception):
    """One lane left the regime the vector derivation covers; use the event loop."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass
class LaneOutcome:
    """Result of evaluating one lane (one single-replication scenario)."""

    #: The finalized summary; ``None`` when the lane fell back.
    summary: Optional[OnlineMetricsSummary] = None
    #: Real time the run ended (the completing acceptance instant).
    end_time: float = 0.0
    #: Always ``True`` for a served lane (the round target completed).
    stopped_early: bool = False
    #: Why the lane must run on the event loop instead, or ``None``.
    fallback: Optional[str] = None


class _Batch:
    """One multicast: a sender emitting one payload to an ordered dest list."""

    __slots__ = ("time", "sender", "kind", "round", "dests", "delays", "seq")

    def __init__(self, time, sender, kind, round_, dests, delays, seq):
        self.time = float(time)
        self.sender = sender
        self.kind = kind
        self.round = round_
        self.dests = dests
        self.delays = delays
        self.seq = seq


class _Round:
    """Per-round phase-1 output for one lane."""

    __slots__ = (
        "k", "tgt", "T", "ann", "timer_ok", "Acc", "valid", "arr",
        "active", "before", "adj_after",
    )


def _faulty_roles(attack: Optional[str], faulty_pids: list) -> dict:
    if attack in (None, "silent"):
        return {pid: "silent" for pid in faulty_pids}
    if attack in (
        "crash", "eager", "two_faced", "laggard",
        "random_silence", "random_two_faced", "random_laggard",
    ):
        return {pid: attack for pid in faulty_pids}
    if attack == "skew_max":
        return {
            pid: ("eager" if index % 2 == 0 else "two_faced")
            for index, pid in enumerate(faulty_pids)
        }
    if attack == "forge_flood":
        return {pid: "flood" for pid in faulty_pids}
    raise LaneFallback(f"attack {attack!r} has no vectorized role assignment")


class _Layout:
    """Seed-independent structure shared by every lane of a scenario family."""

    def __init__(self, scenario, np):
        self.np = np
        params = scenario.params
        self.params = params
        self.n = params.n
        self.f = params.f
        self.P = float(params.period)
        self.alpha = params.alpha_value
        self.tmin = float(params.tmin)
        self.tdel = float(params.tdel)
        self.delay_mode = scenario.delay_mode
        self.clock_mode = scenario.clock_mode
        self.algorithm = scenario.algorithm
        self.h = params.n - scenario.actual_faults
        self.honest_pids = list(range(self.h))
        faulty_pids = list(range(self.h, self.n))
        self.roles = _faulty_roles(scenario.attack, faulty_pids)
        # AdversaryContext.build: fast group = first half of the honest ids.
        half = max(1, len(self.honest_pids) // 2)
        self.fast_group = self.honest_pids[:half]
        self.slow_group = self.honest_pids[half:]
        self.fast_set = frozenset(self.fast_group)
        # Actors drive timers/acceptances: honest plus protocol-following
        # faulty roles.  Eager signers only inject signatures; silent ones
        # only occupy network slots.
        self.actor_pids = list(self.honest_pids) + [
            pid for pid in faulty_pids
            if self.roles[pid] in (
                "crash", "two_faced", "laggard",
                "random_silence", "random_two_faced", "random_laggard",
            )
        ]
        self.A = len(self.actor_pids)
        self.actor_col = {pid: i for i, pid in enumerate(self.actor_pids)}
        self.eager_pids = [pid for pid in faulty_pids if self.roles[pid] == "eager"]
        self.E = len(self.eager_pids)
        self.S = self.A + self.E
        self.flood_pids = [pid for pid in faulty_pids if self.roles[pid] == "flood"]
        self.random_pids = [
            pid for pid in faulty_pids if self.roles[pid] in _RANDOM_ROLES
        ]
        # The lockstep array path (phases 1/2) covers exactly the regime it
        # was proven in; everything else eligible goes through _ExactReplay.
        self.lockstep = (
            self.algorithm == "auth"
            and self.delay_mode not in ("uniform", "min")
            and not self.flood_pids
            and not self.random_pids
        )
        self.crash_time = (
            CRASH_PERIODS * params.period
            if any(self.roles[pid] == "crash" for pid in faulty_pids)
            else None
        )
        self.is_crash = np.array(
            [self.roles.get(pid) == "crash" for pid in self.actor_pids], dtype=bool
        )
        # Honest clock rates follow _honest_clock's index-parity assignment.
        rates = []
        for i, pid in enumerate(self.actor_pids):
            if pid < self.h:
                if self.clock_mode == "nominal":
                    rates.append(1.0)
                else:
                    rates.append(params.max_rate if i % 2 == 0 else params.min_rate)
            else:
                rates.append(1.0)  # faulty clocks: FixedRateClock(1.0, 0.0)
        self.rates = np.array(rates, dtype=float)
        # Destination lists and per-destination clamped delays, in the event
        # loop's send order (broadcast: ascending pids minus self; two-faced:
        # the fast group; laggard: ascending pids minus self at tdel).
        all_pids = list(range(self.n))
        self.dests = {}
        self.delays = {}
        for pid in self.actor_pids + self.eager_pids + self.flood_pids:
            role = self.roles.get(pid, "honest")
            if role == "two_faced":
                dest_list = list(self.fast_group)
            else:
                dest_list = [d for d in all_pids if d != pid]
            self.dests[pid] = tuple(dest_list)
            if (
                self.delay_mode == "uniform"
                and role not in ("laggard", "random_laggard")
            ):
                # Drawn per message from the network RNG at emit time.
                self.delays[pid] = None
            elif role == "random_laggard":
                # Drawn per message from the adversary RNG at emit time.
                self.delays[pid] = None
            else:
                self.delays[pid] = tuple(
                    self._pair_delay(role, d) for d in dest_list
                )
        # random_two_faced multicasts to a coin-flipped group per broadcast;
        # precompute both (dests, delays) variants.  multicast falls back to
        # every honest pid when the chosen group is empty (h == 1).
        self.rtf_tables = {}
        for pid in self.random_pids:
            if self.roles[pid] != "random_two_faced":
                continue
            variants = []
            for group in (self.fast_group, self.slow_group or self.honest_pids):
                dests = tuple(group)
                if self.delay_mode == "uniform":
                    delays = None
                else:
                    delays = tuple(
                        self._pair_delay("random_two_faced", d) for d in dests
                    )
                variants.append((dests, delays))
            self.rtf_tables[pid] = tuple(variants)
        if not self.lockstep:
            self.D = None
            self.M = None
            return
        # Arrival structure over (sender row, actor column).
        D = np.full((self.S, self.A), np.inf)
        M = np.zeros((self.S, self.A), dtype=bool)
        sender_order = self.actor_pids + self.eager_pids
        for s, pid in enumerate(sender_order):
            for p, d in enumerate(self.dests[pid]):
                col = self.actor_col.get(d)
                if col is not None:
                    D[s, col] = self.delays[pid][p]
                    M[s, col] = True
        self.D = D
        self.M = M

    def _pair_delay(self, role: str, dest: int) -> float:
        # Exactly Network.send's clamp min(tdel, max(tmin, raw)) for each
        # deterministic policy (and the laggard's explicit delay=tdel).
        if role == "laggard":
            return min(self.tdel, max(self.tmin, self.tdel))
        if self.delay_mode == "min":
            return min(self.tdel, max(self.tmin, 0.0))
        if self.delay_mode == "max":
            return min(self.tdel, max(self.tmin, float("inf")))
        if self.delay_mode == "midpoint":
            return min(self.tdel, max(self.tmin, 0.5 * (self.tmin + self.tdel)))
        if self.delay_mode == "targeted":
            raw = 0.0 if dest in self.fast_set else float("inf")
            return min(self.tdel, max(self.tmin, raw))
        raise LaneFallback(f"delay_mode {self.delay_mode!r} is not deterministic")


def _honest_drifting_clocks(layout: _Layout, scenario) -> list:
    """Reconstruct the honest drifting clocks exactly as ``_honest_clock``.

    ``drifting_clock`` consumes ``Random(seed * 1009 + index)`` draw for
    draw (one ``uniform(lo, hi)`` per segment), so the returned
    :class:`~repro.sim.clocks.PiecewiseLinearClock` objects are the same
    objects -- float for float -- the event loop builds.
    """
    params = layout.params
    offsets = _lane_offsets_list(layout, scenario)
    horizon = scenario.horizon()
    return [
        drifting_clock(
            params.rho,
            offset=offsets[i],
            seed=scenario.seed * 1009 + i,
            segment_length=max(params.period, 4.0 * params.tdel),
            horizon=horizon * 1.2 + 1.0,
        )
        for i in range(layout.h)
    ]


class _DriftTables:
    """Vectorized segment-walk read/invert over precomputed drift breakpoints.

    Each honest process's piecewise-linear rate trajectory is reconstructed
    up front (:func:`_honest_drifting_clocks`) and laid out as
    ``(lane, actor, segment)`` arrays; ``read``/``invert`` then mirror
    :class:`~repro.sim.clocks.PiecewiseLinearClock`'s ``bisect_right``
    segment selection with ``searchsorted`` / cumulative comparison, using
    exactly the same float expressions per segment.  Faulty actor columns
    keep ``FixedRateClock(1.0, 0.0)``'s closed forms via the honest-column
    mask: a fixed-rate clock may *not* be rewritten as a multi-segment
    piecewise table, because the accumulated ``value + rate * dt`` floats
    differ from the closed form.
    """

    def __init__(self, layout: _Layout, scenarios: list) -> None:
        np = layout.np
        self.np = np
        self.clocks = [_honest_drifting_clocks(layout, sc) for sc in scenarios]
        starts = list(self.clocks[0][0]._starts)
        for lane in self.clocks:
            for clock in lane:
                if list(clock._starts) != starts:
                    raise LaneFallback(
                        "drifting-clock segment boundaries are not lane-uniform"
                    )
        L, A, K = len(scenarios), layout.A, len(starts)
        self.starts = np.array(starts, dtype=float)
        # Faulty columns carry inert identity segments (rate 1, value ==
        # start); their outputs are replaced by the fixed-rate closed form.
        rates = np.ones((L, A, K), dtype=float)
        values = np.tile(self.starts, (L, A, 1))
        for l, lane in enumerate(self.clocks):
            for i, clock in enumerate(lane):
                rates[l, i, :] = clock._rates
                values[l, i, :] = clock._values
        self.rates = rates
        self.values = values
        self.honest = np.arange(A) < layout.h

    def _tables(self, lane):
        if lane is None:
            return self.rates, self.values
        return self.rates[lane], self.values[lane]

    def invert(self, hw, lane=None):
        # PiecewiseLinearClock.invert: local <= offset -> 0.0, else segment
        # i = bisect_right(values, local) - 1, starts[i] + (local - v) / r.
        np = self.np
        rates, values = self._tables(lane)
        idx = (values <= hw[..., None]).sum(axis=-1) - 1
        idx = np.clip(idx, 0, values.shape[-1] - 1)
        v = np.take_along_axis(values, idx[..., None], axis=-1)[..., 0]
        r = np.take_along_axis(rates, idx[..., None], axis=-1)[..., 0]
        drift = np.where(
            hw <= values[..., 0], 0.0, self.starts[idx] + (hw - v) / r
        )
        # FixedRateClock(1.0, 0.0).invert: local <= 0 -> 0.0 else local.
        fixed = np.where(hw <= 0.0, 0.0, hw)
        return np.where(self.honest[: drift.shape[-1]], drift, fixed)

    def read(self, t, lane=None):
        # PiecewiseLinearClock.read: t <= 0 -> offset, else segment
        # i = bisect_right(starts, t) - 1, values[i] + rates[i] * (t - s).
        np = self.np
        rates, values = self._tables(lane)
        idx = np.searchsorted(self.starts, t, side="right") - 1
        idx = np.clip(idx, 0, len(self.starts) - 1)
        v = np.take_along_axis(values, idx[..., None], axis=-1)[..., 0]
        r = np.take_along_axis(rates, idx[..., None], axis=-1)[..., 0]
        drift = np.where(
            t <= 0.0, values[..., 0], v + r * (t - self.starts[idx])
        )
        # FixedRateClock(1.0, 0.0).read: offset + rate * t == t, exactly.
        return np.where(self.honest[: drift.shape[-1]], drift, t)


def _phase1(layout: _Layout, scenarios: list, drift=None) -> list:
    """Lockstep round evaluation for all lanes; returns per-lane round lists.

    Entries are either ``list[_Round]`` or a :class:`LaneFallback` instance
    recording why that lane left the proven regime.
    """
    np = layout.np
    A, S, E = layout.A, layout.S, layout.E
    f = layout.f
    L = len(scenarios)
    R = scenarios[0].rounds
    tdel = layout.tdel
    crash_time = layout.crash_time
    is_crash = layout.is_crash

    offs = np.zeros((L, A))
    for l, sc in enumerate(scenarios):
        lane_offsets = spread_offsets(
            layout.h, sc.params.initial_offset_spread, seed=sc.seed + 13
        )
        offs[l, : layout.h] = lane_offsets
    rates = layout.rates

    adj = np.zeros((L, A))
    arm = np.zeros((L, A))
    active = np.ones((L, A), dtype=bool)
    max_prev_acc = np.zeros(L)

    results: list = [[] for _ in range(L)]
    failed: dict = {}

    def fail(l, reason):
        if l not in failed:
            failed[l] = LaneFallback(reason)

    for k in range(1, R + 1):
        kP = k * layout.P
        tgt = kP + layout.alpha
        hw = kP - adj
        if drift is not None:
            inv = drift.invert(hw)
        else:
            inv = np.where(hw <= offs, 0.0, (hw - offs) / rates[None, :])
        T = np.maximum(inv, arm)
        has_eager = E > 0 and k <= EAGER_MAX_ROUND
        te = max(0.0, EAGER_FACTOR * k * layout.P) if has_eager else None
        # Candidate arrival matrix: sender row s announced at its own instant
        # delivers to actor column d at send + clamped delay (inf if s never
        # reaches d).  Actor rows are masked by the announce fixpoint below.
        cand = np.full((L, S, A), np.inf)
        actor_block = T[:, :, None] + layout.D[None, :A, :]
        cand[:, :A, :] = np.where(layout.M[None, :A, :], actor_block, np.inf)
        if has_eager:
            eager_block = te + layout.D[None, A:, :]
            cand[:, A:, :] = np.where(layout.M[None, A:, :], eager_block, np.inf)

        for l in range(L):
            if l in failed:
                continue
            try:
                rd = _solve_round(
                    layout, np, k, tgt, T[l], cand[l], active[l], arm[l],
                    adj[l], offs[l], max_prev_acc[l], has_eager, te,
                )
            except LaneFallback as fb:
                fail(l, fb.reason)
                continue
            results[l].append(rd)
            # Advance lane state with the same float expressions set_to uses.
            if drift is not None:
                reading = drift.read(rd.Acc, lane=l)
            else:
                reading = offs[l] + rates * rd.Acc
            rd.before = reading + adj[l]
            rd.adj_after = np.where(rd.valid, tgt - reading, adj[l])
            adj[l] = rd.adj_after
            arm[l] = np.where(rd.valid, rd.Acc, arm[l])
            if k < R:
                missed = active[l] & ~rd.valid & ~is_crash
                if missed.any():
                    fail(l, f"a faulty participant missed round {k}")
                    continue
            active[l] = rd.valid
            honest_acc = rd.Acc[: layout.h]
            max_prev_acc[l] = float(np.max(np.where(rd.valid, rd.Acc, -np.inf)))
        if len(failed) == L:
            break

    out = []
    for l in range(L):
        out.append(failed.get(l, results[l]))
    return out


def _solve_round(layout, np, k, tgt, T, cand, active, arm, adj, offs,
                 max_prev_acc, has_eager, te):
    """Fixpoint + guards for one lane's round ``k``; returns a `_Round`."""
    A, S, f = layout.A, layout.S, layout.f
    h = layout.h
    tdel = layout.tdel
    crash_time = layout.crash_time
    is_crash = layout.is_crash

    timer_ok = active.copy()
    if crash_time is not None:
        crash_live = is_crash & active
        if k == 1 and bool((crash_live & (T == crash_time)).any()):
            # Boot-order corner: the round-1 timer (intra 0) fires before the
            # halt (intra 1), so an announce -- and possibly an acceptance --
            # happens *at* the crash instant.  Measure it on the event loop.
            raise LaneFallback("crash instant coincides with a round-1 timer")
        timer_ok = np.where(crash_live, timer_ok & (T < crash_time), timer_ok)

    # Strong round separation: every round-k event (timers, announce and
    # bundle deliveries) must lie strictly after every round-(k-1)
    # acceptance, which is what makes (a) timers precede same-instant
    # deliveries (non-eager sends happen after every timer was armed) and
    # (b) rounds pairwise instant-disjoint.  Eager signatures may legally
    # arrive early; the one ordering they could corrupt is checked below.
    if k >= 2:
        armed_T = T[active]
        if armed_T.size == 0:
            raise LaneFallback(f"no participant armed round {k}")
        if not float(np.min(armed_T)) > max_prev_acc:
            raise LaneFallback(f"rounds {k - 1} and {k} share an instant")
    if has_eager and k >= 2:
        eager_hit = ((cand[A:, :] == T[None, :]) & layout.M[A:, :]).any(axis=0)
        corner = timer_ok & eager_hit & (te <= arm)
        if bool(corner.any()):
            raise LaneFallback(
                f"an eager signature races a round-{k} timer's arming instant"
            )

    rows_fixed = np.ones(S - A, dtype=bool)
    idx = np.arange(A)
    ann = timer_ok.copy()
    via = np.full(A, np.inf)
    X_wo = np.full(A, np.inf)
    for _ in range(A + 4):
        rows_on = np.concatenate([ann, rows_fixed])
        arr = np.where(rows_on[:, None], cand, np.inf)
        X_wo = np.sort(arr, axis=0)[f]
        arr_own = arr.copy()
        arr_own[idx, idx] = np.where(ann, T, np.inf)
        X_with = np.sort(arr_own, axis=0)[f]
        X = np.where(ann, X_with, X_wo)
        # Bundle relaxation: an acceptance anywhere relays a proof that
        # accepts any pending receiver on arrival (min-plus fixpoint).
        Acc = np.where(active, X, np.inf)
        converged = False
        for _ in range(A + 2):
            send_ok = active & np.isfinite(Acc)
            if crash_time is not None:
                send_ok &= ~is_crash | (Acc < crash_time)
            via_mat = np.where(
                layout.M[:A] & send_ok[:, None], Acc[:, None] + layout.D[:A], np.inf
            )
            via = via_mat.min(axis=0)
            new_acc = np.where(active, np.minimum(X, via), np.inf)
            if np.array_equal(new_acc, Acc):
                converged = True
                break
            Acc = new_acc
        if not converged:
            raise LaneFallback(f"bundle relaxation did not converge in round {k}")
        # A timer announces iff nothing else accepted its owner strictly
        # before the timer fired; at the shared instant the timer wins
        # (timers precede same-instant deliveries under the guards above).
        others = np.minimum(X_wo, via)
        new_ann = timer_ok & (others >= T)
        if np.array_equal(new_ann, ann):
            break
        ann = new_ann
    else:
        raise LaneFallback(f"announce fixpoint did not converge in round {k}")

    valid = active & np.isfinite(Acc)
    if crash_time is not None:
        valid &= ~is_crash | (Acc < crash_time)
    if not bool(valid[:h].all()):
        raise LaneFallback(f"an honest process missed round {k}")

    rd = _Round()
    rd.k = k
    rd.tgt = tgt
    rd.T = T.copy()
    rd.ann = ann
    rd.timer_ok = timer_ok
    rd.Acc = np.where(valid, Acc, np.inf)
    rd.valid = valid
    rd.arr = np.where(np.concatenate([ann, rows_fixed])[:, None], cand, np.inf)
    rd.active = active.copy()
    return rd


class _LaneAssembly:
    """Phase 2 + replay for one lane: exact timeline, stats, recorder feed."""

    def __init__(self, layout: _Layout, scenario, rounds: list, mergeable, sample_messages):
        self.layout = layout
        self.scenario = scenario
        self.rounds = rounds
        self.mergeable = mergeable
        self.sample_messages = sample_messages
        self.np = layout.np
        self.batches: list = []
        self.eager_batches: list = []
        self.emissions: list = []
        self.seq = 0
        self.rank = [pid - layout.n for pid in layout.actor_pids]
        self.next_rank = 0
        #: ``(_DriftTables, lane_index)`` when the lane runs drifting clocks.
        self._drift = None

    # -- batch creation -------------------------------------------------------

    def _add_batch(self, time, sender, kind, round_):
        batch = _Batch(
            time, sender, kind, round_,
            self.layout.dests[sender], self.layout.delays[sender], self.seq,
        )
        self.seq += 1
        self.batches.append(batch)
        return batch

    # -- driving --------------------------------------------------------------

    def run(self) -> LaneOutcome:
        layout = self.layout
        np = self.np
        final = self.rounds[-1]
        t_star = float(np.max(final.Acc[: layout.h]))
        if not t_star <= self.scenario.horizon():
            raise LaneFallback("run exceeds the static horizon")
        self._check_round_after(final, t_star)
        self._create_eager_batches(t_star)
        for rd in self.rounds:
            self._process_round(rd, t_star)
        return self._replay(t_star)

    def _check_round_after(self, final, t_star):
        """No round-(R+1) timer may fire at or before the cut instant."""
        layout = self.layout
        np = self.np
        k1 = final.k + 1
        kP = k1 * layout.P
        adj = final.adj_after
        hw = kP - adj
        offs = self._offs
        if self._drift is not None:
            tables, lane = self._drift
            inv = tables.invert(hw, lane=lane)
        else:
            inv = np.where(hw <= offs, 0.0, (hw - offs) / layout.rates)
        T_next = np.maximum(inv, final.Acc)
        armed = final.valid
        if bool((armed & (T_next <= t_star)).any()):
            raise LaneFallback("a next-round timer lands on the final instant")

    def _create_eager_batches(self, t_star):
        layout = self.layout
        for pid in layout.eager_pids:
            for k in range(1, EAGER_MAX_ROUND + 1):
                te = max(0.0, EAGER_FACTOR * k * layout.P)
                if te > t_star:
                    break
                batch = self._add_batch(te, pid, _SIG, k)
                self.eager_batches.append(batch)

    def _process_round(self, rd, t_star):
        layout = self.layout
        np = self.np
        is_last = rd is self.rounds[-1]
        times = set(float(t) for t in rd.T[rd.ann])
        times.update(float(t) for t in rd.Acc[rd.valid])
        for tau in sorted(times):
            if is_last and tau > t_star:
                continue
            accs = [
                j for j in range(layout.A)
                if rd.valid[j] and rd.Acc[j] == tau
            ]
            anns = [
                j for j in range(layout.A)
                if rd.ann[j] and rd.T[j] == tau
            ]
            final_here = is_last and tau == t_star
            if final_here or len(accs) >= 2:
                self._walk(tau, rd, final_here)
            else:
                self._direct(tau, rd, anns, accs)

    # -- uncontended instants -------------------------------------------------

    def _direct(self, tau, rd, anns, accs):
        layout = self.layout
        acc = accs[0] if accs else None
        timer_trig = acc is not None and bool(rd.ann[acc]) and rd.T[acc] == tau
        bundled = False
        for j in sorted(anns, key=lambda j: self.rank[j]):
            self._add_batch(tau, layout.actor_pids[j], _SIG, rd.k)
            if timer_trig and j == acc:
                self._accept(j, tau, rd)
                bundled = True
        if acc is not None and not bundled:
            self._accept(acc, tau, rd)

    def _accept(self, j, tau, rd):
        layout = self.layout
        pid = layout.actor_pids[j]
        if pid < layout.h:
            self.emissions.append((
                float(tau), pid, rd.k,
                float(rd.before[j]), float(rd.adj_after[j]), float(rd.tgt),
            ))
        batch = self._add_batch(tau, pid, _BUNDLE, rd.k)
        self.rank[j] = self.next_rank
        self.next_rank += 1
        return batch

    # -- contended instants: exact insertion-order walk -----------------------

    def _walk(self, tau, rd, is_final):
        layout = self.layout
        np = self.np
        k = rd.k
        f1 = layout.f + 1
        crash_time = layout.crash_time
        pending = set()
        for j in range(layout.A):
            if not rd.active[j]:
                continue
            if rd.valid[j] and rd.Acc[j] < tau:
                continue
            if crash_time is not None and layout.is_crash[j] and crash_time <= tau:
                continue
            pending.add(j)
        counts = {j: int((rd.arr[:, j] < tau).sum()) for j in pending}
        for j in pending:
            if rd.ann[j] and rd.T[j] < tau:
                counts[j] += 1
        honest_left = 0
        if is_final:
            for j in pending:
                if layout.actor_pids[j] < layout.h:
                    if not (rd.valid[j] and rd.Acc[j] == tau):
                        raise LaneFallback("final instant misses an honest acceptance")
                    honest_left += 1
            if honest_left == 0:
                raise LaneFallback("final instant has no honest acceptance")
        accepted: set = set()
        state = {"cut": False}

        # Deliveries scheduled before this instant, in insertion (= creation)
        # order; batches created during the instant append their zero-delay
        # arrivals at the tail, which is exactly where their event-queue
        # sequence numbers put them.
        deliveries = []
        for b in sorted(self.batches, key=lambda b: (b.time, b.seq)):
            if not b.time < tau:
                continue
            for p, d in enumerate(b.dests):
                if b.time + b.delays[p] == tau and d in layout.actor_col:
                    deliveries.append((b, d))

        def spawn(batch):
            for p, d in enumerate(batch.dests):
                if batch.delays[p] == 0.0 and d in layout.actor_col:
                    deliveries.append((batch, d))

        def accept_in_walk(j):
            if not (rd.valid[j] and rd.Acc[j] == tau):
                raise LaneFallback(
                    f"walk and relaxation disagree on an acceptance in round {k}"
                )
            accepted.add(j)
            spawn(self._accept(j, tau, rd))
            if is_final and layout.actor_pids[j] < layout.h:
                nonlocal_honest[0] -= 1
                if nonlocal_honest[0] == 0:
                    state["cut"] = True

        nonlocal_honest = [honest_left]

        def fire_announce(j):
            if j not in pending or j in accepted:
                raise LaneFallback(f"round-{k} timer fired for a settled process")
            spawn(self._add_batch(tau, layout.actor_pids[j], _SIG, k))
            counts[j] += 1
            if counts[j] >= f1:
                accept_in_walk(j)

        # Class 0: boot-scheduled events (eager send slots; round-1 timers),
        # ordered by (pid, boot-intra): the timer is each pid's first boot
        # action, the k-th eager send its k-th.
        boots = []
        for b in self.eager_batches:
            if b.time == tau:
                boots.append(((b.sender, b.round), "eager", b))
        if k == 1:
            for j in range(layout.A):
                if rd.ann[j] and rd.T[j] == tau:
                    boots.append(((layout.actor_pids[j], 0), "timer", j))
        for _, kind, payload in sorted(boots, key=lambda item: item[0]):
            if state["cut"]:
                break
            if kind == "eager":
                spawn(payload)
            else:
                fire_announce(payload)
        # Class 1: round>=2 timers in arming order (the rank each owner's
        # previous acceptance got).
        if k >= 2 and not state["cut"]:
            timers = [
                (self.rank[j], j) for j in range(layout.A)
                if rd.ann[j] and rd.T[j] == tau
            ]
            for _, j in sorted(timers):
                if state["cut"]:
                    break
                fire_announce(j)
        # Class 2: deliveries, in insertion order, growing at the tail.
        i = 0
        while i < len(deliveries) and not state["cut"]:
            b, d = deliveries[i]
            i += 1
            j = layout.actor_col[d]
            if j not in pending or j in accepted:
                continue
            if b.kind == _BUNDLE:
                if b.round == k:
                    accept_in_walk(j)
                elif b.round > k:
                    raise LaneFallback("a bundle for a future round arrived early")
            else:
                if b.round != k:
                    continue
                counts[j] += 1
                if counts[j] >= f1:
                    accept_in_walk(j)

        if state["cut"]:
            return
        expected = {j for j in pending if rd.valid[j] and rd.Acc[j] == tau}
        if accepted != expected:
            raise LaneFallback(
                f"walk and relaxation disagree on round {k}'s acceptance set"
            )
        if is_final:
            raise LaneFallback("final instant did not complete the round")

    # -- replay ---------------------------------------------------------------

    def _replay(self, t_star) -> LaneOutcome:
        clocks = self._drift[0].clocks[self._drift[1]] if self._drift else None
        return _finalize_lane(
            self.layout, self._lane_offsets, self.batches, self.emissions,
            t_star, self.mergeable, self.sample_messages, clocks=clocks,
        )


def _finalize_lane(layout, lane_offsets, batches, emissions, t_star,
                   mergeable, sample_messages, clocks=None) -> LaneOutcome:
    """Shared finalization of one served lane (both vector engines).

    Computes the network statistics arithmetically from the batch layout,
    selects sampled messages by index stepping, and replays the acceptance
    emissions -- in global order -- into a real
    :class:`~repro.sim.recorder.OnlineMetricsRecorder`, so everything
    downstream of the recorder seam is the exact code the event loop uses.
    """
    params = layout.params
    ordered = sorted(batches, key=lambda b: (b.time, b.seq))
    total = 0
    by_sender: dict = {}
    by_type: dict = {}
    for b in ordered:
        count = len(b.dests)
        total += count
        by_sender[b.sender] = by_sender.get(b.sender, 0) + count
        by_type[b.kind] = by_type.get(b.kind, 0) + count
    stats = NetworkStats(
        total_messages=total,
        messages_by_sender=by_sender,
        messages_by_type=by_type,
    )

    samples = None
    if sample_messages is not None:
        samples = []
        step = sample_messages
        base = 0
        index = 0  # next sampled msg_id
        for b in ordered:
            count = len(b.dests)
            while index < base + count:
                p = index - base
                samples.append(MessageSample(
                    msg_id=index,
                    sender=b.sender,
                    dest=b.dests[p],
                    kind=b.kind,
                    send_time=b.time,
                    deliver_time=b.time + b.delays[p],
                ))
                index += step
            base += count

    recorder = OnlineMetricsRecorder(
        rate_low=params.min_rate,
        rate_high=params.max_rate,
        mergeable=mergeable,
        sample_messages=sample_messages,
    )
    for i, pid in enumerate(layout.honest_pids):
        if clocks is not None:
            clock = clocks[i]  # reconstructed drifting clock, same floats
        elif layout.clock_mode == "nominal":
            clock = FixedRateClock(rate=1.0, offset=lane_offsets[i])
        else:
            rate = params.max_rate if i % 2 == 0 else params.min_rate
            clock = FixedRateClock(rate=rate, offset=lane_offsets[i])
        recorder.register_process(pid, clock, faulty=False)
    for pid in range(layout.h, layout.n):
        recorder.register_process(
            pid, FixedRateClock(rate=1.0, offset=0.0), faulty=True
        )
    for time, pid, round_, before, adj_after, tgt in emissions:
        recorder.on_adjustment(pid, time, adj_after)
        recorder.on_resync(ResyncEvent(
            pid=pid, round=round_, time=time,
            logical_before=before, logical_after=tgt,
        ))
    if samples is not None:
        recorder.ingest_message_samples(samples)
    summary = recorder.finalize(t_star, stats)
    return LaneOutcome(
        summary=summary, end_time=t_star, stopped_early=True, fallback=None
    )


# Event codes of the exact-replay heap.  Events are plain tuples
# ``(time, seq, code, ...)``; ``seq`` is unique, so heap comparisons never
# reach the payload -- exactly the event queue's (time, insertion-seq) order.
_EV_TIMER = 0    # (t, seq, 0, pid, round)
_EV_HALT = 1     # (t, seq, 1, pid)
_EV_EAGER = 2    # (t, seq, 2, pid, round)
_EV_FLOOD = 3    # (t, seq, 3, pid)
_EV_DELIVER = 4  # (t, seq, 4, dest, kind, sender, round, payload)


class _ExactReplay:
    """Per-lane exact replay of the event loop, without the event loop.

    Mirrors the discrete execution by construction: a heap of plain tuples
    ordered by ``(time, seq)`` where ``seq`` is allocated in the event
    loop's exact push order, protocol state as plain sets (the signature /
    echo trackers' observable state), the network RNG consumed in global
    send order under ``uniform`` delays, and each flood adversary's RNG
    stream replayed draw for draw.  Deliveries that are provably no-ops on
    the event loop (payload kinds the receiving algorithm ignores, forged
    signatures that fail verification, deliveries to non-protocol faulty
    processes) are never pushed -- popping a no-op has no side effects and
    skipping pushes preserves the relative ``seq`` order of everything
    else, so the execution is unchanged.  The per-message constants the
    event loop pays (envelope/event allocation, handler dispatch,
    signature verification, per-message recorder and stats calls) are
    replaced by set operations and batch-level accounting.

    Float parity: every arithmetic expression (timer inversion, logical
    clock adjustment, delay clamping and scaling, flood tick accumulation)
    is written exactly as the mirrored object evaluates it, in pure Python
    floats.
    """

    def __init__(self, layout: _Layout, scenario, mergeable, sample_messages):
        self.layout = layout
        self.scenario = scenario
        self.mergeable = mergeable
        self.sample_messages = sample_messages
        params = layout.params
        self.n = layout.n
        self.h = layout.h
        self.f = layout.f
        self.P = layout.P
        self.alpha = layout.alpha
        self.tmin = layout.tmin
        self.tdel = layout.tdel
        self.is_echo = layout.algorithm == "echo"
        self.echo_threshold = layout.f + 1
        self.accept_threshold = 2 * layout.f + 1
        self.actor_set = frozenset(layout.actor_pids)
        self.R = scenario.rounds

        # Per-process clock functions as pure Python floats (H(t) = offset
        # + rate * t), mirroring build_cluster's assignment: honest clocks
        # by index parity under "extreme", faulty clocks at rate 1 /
        # offset 0.  Drifting ("random") honest clocks are reconstructed
        # as the exact PiecewiseLinearClock objects instead.
        self.lane_offsets = _lane_offsets_list(layout, scenario)
        self.offs = [0.0] * self.n
        self.rate = [1.0] * self.n
        for pid in layout.honest_pids:
            self.offs[pid] = self.lane_offsets[pid]
            if layout.clock_mode == "extreme":
                self.rate[pid] = (
                    params.max_rate if pid % 2 == 0 else params.min_rate
                )
        self.clocks = (
            _honest_drifting_clocks(layout, scenario)
            if layout.clock_mode == "random" else None
        )

        # Protocol state (the trackers' observable state, as plain sets).
        self.cur = [1] * self.n
        self.adj = [0.0] * self.n
        self.floor = [0] * self.n
        self.broadcasted = [set() for _ in range(self.n)]
        if self.is_echo:
            # round -> [init_senders, echo_senders, echoed, accept_reported]
            self.est = [dict() for _ in range(self.n)]
        else:
            # round -> set of signer ids holding a valid signature
            self.sigs = [dict() for _ in range(self.n)]
        self.halted: set = set()

        # Replayed RNG streams.
        self.net_rng = (
            Random(scenario.seed + 1) if layout.delay_mode == "uniform" else None
        )
        self.adv_rng = {
            pid: Random(scenario.seed + pid)
            for pid in layout.flood_pids + layout.random_pids
        }
        self.honest_list = list(layout.honest_pids)

        self.heap: list = []
        self.seq = self.n  # boot events consumed seqs 0 .. n-1
        self.now = 0.0
        self.batches: list = []
        self.emissions: list = []
        self.batch_seq = 0
        self.reached = [False] * self.h
        self.remaining = self.h
        self.done = False

    # -- scheduling mirrors ---------------------------------------------------

    def _push(self, item) -> None:
        heapq.heappush(self.heap, item)

    def _arm_timer(self, pid: int, k: int) -> None:
        # ClockSyncProcess.schedule_round -> set_logical_timer ->
        # set_timer_local: invert the process clock, clamp to now.
        hw = k * self.P - self.adj[pid]
        if self.clocks is not None and pid < self.h:
            real = self.clocks[pid].invert(hw)
        else:
            offs = self.offs[pid]
            real = 0.0 if hw <= offs else (hw - offs) / self.rate[pid]
        if real < self.now:
            real = self.now
        self._push((real, self.seq, _EV_TIMER, pid, k))
        self.seq += 1

    def _broadcast(self, sender: int, kind: str, round_: int, deliver: bool,
                   payload=None) -> None:
        """A protocol-level ``broadcast`` call, routed through the sender's
        behaviour override when it has one.

        This is the per-behaviour replay table: each randomized behaviour
        documents its exact draw sequence in
        :mod:`repro.faults.behaviors`, and the matching branch here
        consumes the mirrored ``Random(seed + pid)`` stream draw for draw.
        """
        role = self.layout.roles.get(sender, "honest")
        if role == "random_silence":
            # RandomSilence*.broadcast: one drop draw per broadcast.  A
            # dropped broadcast never reaches the network: no batch, no
            # stats, no seqs, no network-RNG draws.
            if self.adv_rng[sender].random() < RANDOM_DROP_PROBABILITY:
                return
            self._emit(sender, kind, round_, deliver, payload)
        elif role == "random_two_faced":
            # RandomTwoFaced*.broadcast: one bias draw picks the favoured
            # group, then a plain multicast to it.
            pick = (
                0 if self.adv_rng[sender].random() < RANDOM_FAST_BIAS else 1
            )
            dests, delays = self.layout.rtf_tables[sender][pick]
            self._emit(
                sender, kind, round_, deliver, payload,
                dests=dests, delays=delays,
            )
        elif role == "random_laggard":
            # RandomLaggard*.broadcast: one uniform(tmin, tdel) draw per
            # peer in ascending-pid order, passed as an explicit delay --
            # which skips the network RNG but still crosses Network.send's
            # min(tdel, max(tmin, .)) clamp.
            rng = self.adv_rng[sender]
            dests = self.layout.dests[sender]
            tmin, tdel = self.tmin, self.tdel
            delays = tuple(
                min(tdel, max(tmin, rng.uniform(tmin, tdel))) for _ in dests
            )
            self._emit(
                sender, kind, round_, deliver, payload,
                dests=dests, delays=delays,
            )
        else:
            self._emit(sender, kind, round_, deliver, payload)

    def _emit(self, sender: int, kind: str, round_: int, deliver: bool,
              payload=None, *, dests=None, delays=None) -> None:
        """One broadcast/multicast: stats batch + (relevant) delivery pushes."""
        layout = self.layout
        if dests is None:
            dests = layout.dests[sender]
            delays = layout.delays[sender]
        if delays is None:
            # Network._choose_delay under UniformDelay: one unit draw per
            # message in destination order, scaled into [tmin, tdel].
            rng = self.net_rng
            width = self.tdel - self.tmin
            tmin = self.tmin
            delays = tuple(tmin + rng.random() * width for _ in dests)
        now = self.now
        self.batches.append(
            _Batch(now, sender, kind, round_, dests, delays, self.batch_seq)
        )
        self.batch_seq += 1
        if not deliver:
            return
        actor_set = self.actor_set
        halted = self.halted
        kind_code = _KIND_CODES[kind]
        for p, d in enumerate(dests):
            if d in actor_set and d not in halted:
                self._push((
                    now + delays[p], self.seq, _EV_DELIVER,
                    d, kind_code, sender, round_, payload,
                ))
            self.seq += 1

    # -- protocol mirrors -----------------------------------------------------

    def _auth_add(self, pid: int, round_: int, signer: int) -> bool:
        # SignatureTracker.add for a *valid* signature: window check, then
        # per-round signer dedup (forged signatures never reach this).
        fl = self.floor[pid]
        if round_ < fl or round_ > fl + TRACKER_LOOKAHEAD:
            return False
        per_round = self.sigs[pid].setdefault(round_, set())
        if signer in per_round:
            return False
        per_round.add(signer)
        return True

    def _echo_state(self, pid: int, round_):
        fl = self.floor[pid]
        if round_ < fl or round_ > fl + TRACKER_LOOKAHEAD:
            return None
        return self.est[pid].setdefault(round_, [set(), set(), False, False])

    def _echo_eval(self, state):
        # EchoTracker._evaluate: f+1 inits or echoes -> echo (once);
        # 2f+1 echoes -> accept (reported once).
        send_echo = not state[2] and (
            len(state[0]) >= self.echo_threshold
            or len(state[1]) >= self.echo_threshold
        )
        accept = False
        if not state[3] and len(state[1]) >= self.accept_threshold:
            accept = True
            state[3] = True
        return send_echo, accept

    def _echo_apply(self, pid: int, round_: int, actions) -> None:
        send_echo, accept = actions
        if send_echo:
            self._echo_send(pid, round_)
        if accept:
            self._try_accept(pid)

    def _echo_send(self, pid: int, round_: int) -> None:
        # EchoSyncProcess._send_echo: broadcast first, then count own echo.
        state = self.est[pid].get(round_)
        if state is None or state[2]:
            return
        self._broadcast(pid, _ECHO, round_, deliver=True)
        state[2] = True
        state[1].add(pid)
        self._echo_apply(pid, round_, self._echo_eval(state))

    def _announce(self, pid: int, k: int) -> None:
        if k in self.broadcasted[pid]:
            return
        self.broadcasted[pid].add(k)
        if self.is_echo:
            # EchoSyncProcess.announce_round: broadcast init, then count own.
            self._broadcast(pid, _INIT, k, deliver=True)
            state = self._echo_state(pid, k)
            if state is not None:
                state[0].add(pid)
                self._echo_apply(pid, k, self._echo_eval(state))
        else:
            # AuthSyncProcess.announce_round: record own signature, then
            # broadcast it, then check the threshold.
            self._auth_add(pid, k, pid)
            self._broadcast(pid, _SIG, k, deliver=True)
            self._try_accept(pid)

    def _try_accept(self, pid: int) -> None:
        # ClockSyncProcess.try_accept: accept every pending round in order.
        rounds = self.est[pid] if self.is_echo else self.sigs[pid]
        while True:
            cur = self.cur[pid]
            if self.is_echo:
                reached = [
                    r for r, st in rounds.items()
                    if r >= cur and len(st[1]) >= self.accept_threshold
                ]
            else:
                reached = [
                    r for r, signers in rounds.items()
                    if r >= cur and len(signers) >= self.echo_threshold
                ]
            if not reached:
                return
            self._accept(pid, min(reached))

    def _accept(self, pid: int, k: int) -> None:
        # ClockSyncProcess.accept_round: resynchronize, relay (auth), then
        # advance the round and re-arm the timer.
        now = self.now
        tgt = k * self.P + self.alpha
        if self.clocks is not None and pid < self.h:
            reading = self.clocks[pid].read(now)
        else:
            reading = self.offs[pid] + self.rate[pid] * now
        before = reading + self.adj[pid]
        adj_after = tgt - reading
        self.adj[pid] = adj_after
        if pid < self.h:
            self.emissions.append((now, pid, k, before, adj_after, tgt))
        if not self.is_echo:
            # AuthSyncProcess.after_acceptance: contribute our signature if
            # missing, then relay the first f+1 signatures by signer id.
            if k not in self.broadcasted[pid]:
                self.broadcasted[pid].add(k)
                self._auth_add(pid, k, pid)
            proof = tuple(sorted(self.sigs[pid].get(k, ())))[: self.f + 1]
            self._broadcast(pid, _BUNDLE, k, deliver=True, payload=proof)
        new_round = k + 1
        self.cur[pid] = new_round
        if new_round > self.floor[pid]:
            self.floor[pid] = new_round
            rounds = self.est[pid] if self.is_echo else self.sigs[pid]
            for r in [r for r in rounds if r < new_round]:
                del rounds[r]
        self._arm_timer(pid, new_round)
        if pid < self.h and k >= self.R and not self.reached[pid]:
            self.reached[pid] = True
            self.remaining -= 1
            if self.remaining == 0:
                self.done = True

    # -- adversary mirrors ----------------------------------------------------

    def _flood_tick(self, pid: int) -> None:
        # ForgeAndFlood._flood, draw for draw.  The forged signature and
        # bundle fail verification and the garbage is ignored by both
        # algorithms; the init only matters to echo trackers.
        rng = self.adv_rng[pid]
        rng.choice(self.honest_list)           # victim (forged signer id)
        round_ = rng.randint(1, FLOOD_MAX_ROUND)
        rng.getrandbits(32)                    # forgery tag guess
        self._emit(pid, _SIG, round_, deliver=False)
        self._emit(pid, _BUNDLE, round_, deliver=False)
        rng.getrandbits(16)                    # garbage blob
        self._emit(pid, _GARBAGE, None, deliver=False)
        self._emit(pid, _INIT, round_, deliver=self.is_echo)
        self._push((self.now + FLOOD_INTERVAL, self.seq, _EV_FLOOD, pid))
        self.seq += 1

    # -- driving --------------------------------------------------------------

    def _boot(self) -> None:
        # Simulation.add_process schedules every boot at time 0 with
        # seq = pid; nothing else can fire at time 0 before the last boot,
        # so processing them directly, in pid order, is order-exact.
        layout = self.layout
        roles = layout.roles
        crash_time = layout.crash_time
        for pid in range(self.n):
            role = roles.get(pid, "honest")
            if pid in self.actor_set:
                self._arm_timer(pid, 1)
                if role == "crash":
                    self._push((crash_time, self.seq, _EV_HALT, pid))
                    self.seq += 1
            elif role == "eager":
                for k in range(1, EAGER_MAX_ROUND + 1):
                    te = max(0.0, EAGER_FACTOR * k * self.P)
                    self._push((te, self.seq, _EV_EAGER, pid, k))
                    self.seq += 1
            elif role == "flood":
                self._push((0.0 + FLOOD_INTERVAL, self.seq, _EV_FLOOD, pid))
                self.seq += 1
            # silent faulty processes schedule nothing

    def run(self) -> LaneOutcome:
        if self.is_echo and self.n <= 3 * self.f:
            # EchoTracker's constructor raises on the event loop; never
            # serve a run the oracle would refuse to build.
            raise LaneFallback("echo broadcast requires n > 3f")
        horizon = self.scenario.horizon()
        heap = self.heap
        halted = self.halted
        self._boot()
        while True:
            if not heap:
                raise LaneFallback(
                    "event queue drained before the target round completed"
                )
            ev = heapq.heappop(heap)
            t = ev[0]
            if t > horizon:
                raise LaneFallback("run exceeds the static horizon")
            self.now = t
            code = ev[2]
            if code == _EV_DELIVER:
                dest = ev[3]
                if dest not in halted:
                    self._deliver(dest, ev[4], ev[5], ev[6], ev[7])
            elif code == _EV_TIMER:
                pid = ev[3]
                if pid not in halted and self.cur[pid] == ev[4]:
                    self._announce(pid, ev[4])
            elif code == _EV_EAGER:
                pid = ev[3]
                if pid not in halted:
                    if self.is_echo:
                        # EagerEchoer._push_round: init then echo.
                        self._emit(pid, _INIT, ev[4], deliver=True)
                        self._emit(pid, _ECHO, ev[4], deliver=True)
                    else:
                        # EagerSigner._sign_round: one genuine signature.
                        self._emit(pid, _SIG, ev[4], deliver=True)
            elif code == _EV_FLOOD:
                if ev[3] not in halted:
                    self._flood_tick(ev[3])
            else:  # _EV_HALT
                halted.add(ev[3])
            if self.done:
                return _finalize_lane(
                    self.layout, self.lane_offsets, self.batches,
                    self.emissions, self.now, self.mergeable,
                    self.sample_messages, clocks=self.clocks,
                )

    def _deliver(self, dest: int, kind_code: int, sender: int, round_,
                 payload) -> None:
        if self.is_echo:
            if kind_code == _KIND_INIT:
                state = self._echo_state(dest, round_)
                if state is not None:
                    state[0].add(sender)
                    self._echo_apply(dest, round_, self._echo_eval(state))
            else:  # echo
                state = self._echo_state(dest, round_)
                if state is not None:
                    state[1].add(sender)
                    self._echo_apply(dest, round_, self._echo_eval(state))
        elif kind_code == _KIND_SIG:
            if self._auth_add(dest, round_, sender):
                self._try_accept(dest)
        else:  # bundle: add every new signer, then check the threshold once
            added = 0
            for signer in payload:
                if self._auth_add(dest, round_, signer):
                    added += 1
            if added:
                self._try_accept(dest)


_KIND_SIG = 0
_KIND_BUNDLE = 1
_KIND_INIT = 2
_KIND_ECHO = 3
_KIND_CODES = {_SIG: _KIND_SIG, _BUNDLE: _KIND_BUNDLE, _INIT: _KIND_INIT, _ECHO: _KIND_ECHO}


def _layout_key(scenario):
    p = scenario.params
    return (
        p.n, p.f, p.rho, p.period, p.tmin, p.tdel, p.alpha_value,
        scenario.algorithm, scenario.attack, scenario.clock_mode,
        scenario.delay_mode, scenario.actual_faults, scenario.rounds,
    )


def run_lanes(scenarios, *, mergeable: bool = False,
              sample_messages: Optional[int] = None) -> list:
    """Evaluate single-replication scenarios on the vector kernel, as lanes.

    Every scenario must already have passed
    :func:`repro.sim.kernel.kernel_ineligibility` (metrics level); lanes
    sharing a family (same params/attack/modes/rounds, different seeds) run
    in lockstep off one static layout.  Returns one :class:`LaneOutcome`
    per scenario, in order: either a finalized
    :class:`~repro.sim.recorder.OnlineMetricsSummary` float-identical to
    the event loop's, or a ``fallback`` reason for the caller to re-run
    that lane on the event loop (a falling-back lane never touches a
    recorder, so no partial observation leaks).
    """
    scenarios = list(scenarios)
    np = numpy_or_none()
    if np is None:
        return [
            LaneOutcome(fallback="numpy is not installed") for _ in scenarios
        ]
    outcomes: list = [None] * len(scenarios)
    groups: dict = {}
    for i, sc in enumerate(scenarios):
        groups.setdefault(_layout_key(sc), []).append(i)
    for indices in groups.values():
        group = [scenarios[i] for i in indices]
        try:
            layout = _Layout(group[0], np)
        except LaneFallback as fb:
            for i in indices:
                outcomes[i] = LaneOutcome(fallback=fb.reason)
            continue
        except Exception as exc:  # pragma: no cover - defensive fallback
            for i in indices:
                outcomes[i] = LaneOutcome(fallback=f"vector evaluation error: {exc!r}")
            continue
        if not layout.lockstep:
            # Echo, uniform/min delays, and randomized attacks run per lane
            # on the exact-replay engine (no cross-lane lockstep arrays).
            for pos, i in enumerate(indices):
                try:
                    with obs.span("kernel.replay") as sp:
                        sp.set("lane", i)
                        outcomes[i] = _ExactReplay(
                            layout, group[pos], mergeable, sample_messages
                        ).run()
                except LaneFallback as fb:
                    outcomes[i] = LaneOutcome(fallback=fb.reason)
                except Exception as exc:  # pragma: no cover - defensive
                    outcomes[i] = LaneOutcome(
                        fallback=f"vector evaluation error: {exc!r}"
                    )
            continue
        try:
            drift = (
                _DriftTables(layout, group)
                if layout.clock_mode == "random" else None
            )
            with obs.span("kernel.phase1") as sp:
                sp.set("lanes", len(group))
                lane_rounds = _phase1(layout, group, drift)
        except LaneFallback as fb:
            for i in indices:
                outcomes[i] = LaneOutcome(fallback=fb.reason)
            continue
        except Exception as exc:  # pragma: no cover - defensive fallback
            for i in indices:
                outcomes[i] = LaneOutcome(fallback=f"vector evaluation error: {exc!r}")
            continue
        for pos, i in enumerate(indices):
            rounds = lane_rounds[pos]
            if isinstance(rounds, LaneFallback):
                outcomes[i] = LaneOutcome(fallback=rounds.reason)
                continue
            try:
                with obs.span("kernel.phase2") as sp:
                    sp.set("lane", i)
                    assembly = _LaneAssembly(
                        layout, group[pos], rounds, mergeable, sample_messages
                    )
                    assembly._offs = _lane_offs(layout, group[pos])
                    assembly._lane_offsets = _lane_offsets_list(layout, group[pos])
                    if drift is not None:
                        assembly._drift = (drift, pos)
                    outcomes[i] = assembly.run()
            except LaneFallback as fb:
                outcomes[i] = LaneOutcome(fallback=fb.reason)
            except Exception as exc:  # pragma: no cover - defensive fallback
                outcomes[i] = LaneOutcome(
                    fallback=f"vector evaluation error: {exc!r}"
                )
    return outcomes


def _lane_offsets_list(layout: _Layout, scenario) -> list:
    return spread_offsets(
        layout.h, scenario.params.initial_offset_spread, seed=scenario.seed + 13
    )


def _lane_offs(layout: _Layout, scenario):
    np = layout.np
    offs = np.zeros(layout.A)
    offs[: layout.h] = _lane_offsets_list(layout, scenario)
    return offs
