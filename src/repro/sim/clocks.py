"""Hardware clock models with bounded drift.

The Srikanth-Toueg model assumes every process ``p`` owns a hardware clock
``H_p`` that it can read but not modify, whose rate with respect to real time
is bounded by the drift parameter ``rho``:

    (t2 - t1) / (1 + rho)  <=  H_p(t2) - H_p(t1)  <=  (1 + rho) * (t2 - t1)

for all ``t2 >= t1``.  The adversary chooses the clock functions subject to
this constraint.  This module provides concrete clock functions:

* :class:`FixedRateClock` -- constant rate, the simplest adversarial choice.
* :class:`PiecewiseLinearClock` -- arbitrary monotone piecewise-linear clocks,
  the general adversarial choice (and the one used to model wander).
* :func:`drifting_clock` -- randomly wandering clock within the drift bound.

All clocks are strictly increasing and invertible, which the simulator relies
on to translate "wake me up when my clock reads X" timers into real time.
"""

from __future__ import annotations

import bisect
import random
from abc import ABC, abstractmethod
from typing import Iterable, Sequence


def rate_bounds(rho: float) -> tuple[float, float]:
    """Return the (min_rate, max_rate) pair ``(1/(1+rho), 1+rho)`` for drift ``rho``."""
    if rho < 0:
        raise ValueError(f"drift bound rho must be non-negative, got {rho}")
    return 1.0 / (1.0 + rho), 1.0 + rho


class HardwareClock(ABC):
    """A read-only, strictly increasing local clock function ``H(t)``."""

    @abstractmethod
    def read(self, t: float) -> float:
        """Return the local clock value at real time ``t >= 0``."""

    @abstractmethod
    def invert(self, local: float) -> float:
        """Return the real time at which the clock first reads ``local``.

        For values below the clock's value at time 0 this returns 0.0.
        """

    @abstractmethod
    def breakpoints(self) -> Sequence[float]:
        """Real times at which the clock rate changes (exclusive of 0)."""

    @property
    @abstractmethod
    def min_rate(self) -> float:
        """Smallest instantaneous rate taken by this clock."""

    @property
    @abstractmethod
    def max_rate(self) -> float:
        """Largest instantaneous rate taken by this clock."""

    def respects_drift(self, rho: float) -> bool:
        """Whether this clock's rates stay within the drift bound ``rho``."""
        lo, hi = rate_bounds(rho)
        tolerance = 1e-12
        return self.min_rate >= lo - tolerance and self.max_rate <= hi + tolerance


class FixedRateClock(HardwareClock):
    """A clock running at a constant ``rate`` with initial value ``offset``.

    ``H(t) = offset + rate * t``.
    """

    def __init__(self, rate: float = 1.0, offset: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError(f"clock rate must be positive, got {rate}")
        self.rate = float(rate)
        self.offset = float(offset)

    def read(self, t: float) -> float:
        return self.offset + self.rate * t

    def invert(self, local: float) -> float:
        if local <= self.offset:
            return 0.0
        return (local - self.offset) / self.rate

    def breakpoints(self) -> Sequence[float]:
        return ()

    @property
    def min_rate(self) -> float:
        return self.rate

    @property
    def max_rate(self) -> float:
        return self.rate

    def __repr__(self) -> str:
        return f"FixedRateClock(rate={self.rate!r}, offset={self.offset!r})"


class PiecewiseLinearClock(HardwareClock):
    """A strictly increasing piecewise-linear clock.

    The clock is described by an initial value ``offset`` and a sequence of
    ``(start_time, rate)`` segments: the i-th rate applies from its start time
    until the next segment's start time; the last rate extends to infinity.
    The first segment must start at time 0.
    """

    def __init__(self, segments: Iterable[tuple[float, float]], offset: float = 0.0) -> None:
        segs = [(float(t), float(r)) for t, r in segments]
        if not segs:
            raise ValueError("at least one segment is required")
        if segs[0][0] != 0.0:
            raise ValueError("the first segment must start at time 0")
        for (t_prev, _), (t_next, _) in zip(segs, segs[1:]):
            if t_next <= t_prev:
                raise ValueError("segment start times must be strictly increasing")
        for _, rate in segs:
            if rate <= 0:
                raise ValueError(f"clock rates must be positive, got {rate}")
        self.offset = float(offset)
        self._starts = [t for t, _ in segs]
        self._rates = [r for _, r in segs]
        # Precompute the local clock value at the start of each segment.
        self._values = [self.offset]
        for i in range(1, len(segs)):
            dt = self._starts[i] - self._starts[i - 1]
            self._values.append(self._values[-1] + self._rates[i - 1] * dt)

    def read(self, t: float) -> float:
        if t <= 0:
            return self.offset
        i = bisect.bisect_right(self._starts, t) - 1
        return self._values[i] + self._rates[i] * (t - self._starts[i])

    def invert(self, local: float) -> float:
        if local <= self.offset:
            return 0.0
        i = bisect.bisect_right(self._values, local) - 1
        return self._starts[i] + (local - self._values[i]) / self._rates[i]

    def breakpoints(self) -> Sequence[float]:
        return tuple(self._starts[1:])

    @property
    def min_rate(self) -> float:
        return min(self._rates)

    @property
    def max_rate(self) -> float:
        return max(self._rates)

    def __repr__(self) -> str:
        return (
            f"PiecewiseLinearClock(segments={list(zip(self._starts, self._rates))!r}, "
            f"offset={self.offset!r})"
        )


def fastest_clock(rho: float, offset: float = 0.0) -> FixedRateClock:
    """The fastest clock allowed by drift bound ``rho`` (rate ``1+rho``)."""
    return FixedRateClock(rate=1.0 + rho, offset=offset)


def slowest_clock(rho: float, offset: float = 0.0) -> FixedRateClock:
    """The slowest clock allowed by drift bound ``rho`` (rate ``1/(1+rho)``)."""
    return FixedRateClock(rate=1.0 / (1.0 + rho), offset=offset)


def drifting_clock(
    rho: float,
    offset: float = 0.0,
    seed: int = 0,
    segment_length: float = 10.0,
    horizon: float = 10_000.0,
) -> PiecewiseLinearClock:
    """A randomly wandering clock whose rate stays within the drift bound.

    Every ``segment_length`` units of real time a fresh rate is drawn
    uniformly from ``[1/(1+rho), 1+rho]``.  The result models oscillator
    wander while always conforming to the Srikanth-Toueg drift model.
    """
    lo, hi = rate_bounds(rho)
    rng = random.Random(seed)
    if segment_length <= 0:
        raise ValueError("segment_length must be positive")
    segments = []
    t = 0.0
    while t < horizon:
        segments.append((t, rng.uniform(lo, hi)))
        t += segment_length
    if not segments:
        segments = [(0.0, rng.uniform(lo, hi))]
    return PiecewiseLinearClock(segments, offset=offset)


def spread_offsets(n: int, spread: float, seed: int = 0) -> list[float]:
    """Draw ``n`` initial clock offsets uniformly from ``[0, spread]``.

    The first offset is pinned to 0 and (for ``n >= 2``) the last to
    ``spread`` so that the configured initial dispersion is actually realised.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if spread < 0:
        raise ValueError("spread must be non-negative")
    rng = random.Random(seed)
    if n == 1:
        return [0.0]
    offsets = [0.0, spread] + [rng.uniform(0.0, spread) for _ in range(n - 2)]
    return offsets[:n]
