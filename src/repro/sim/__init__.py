"""Discrete-event simulation substrate for the Srikanth-Toueg reproduction.

This subpackage contains everything the clock-synchronization algorithms run
on top of: the event queue, hardware clock models with bounded drift, the
message-passing network with adversarial delay policies, the process
framework, the simulation engine, and execution traces.
"""

from .clocks import (
    FixedRateClock,
    HardwareClock,
    PiecewiseLinearClock,
    drifting_clock,
    fastest_clock,
    rate_bounds,
    slowest_clock,
    spread_offsets,
)
from .engine import Simulation
from .events import Event, EventQueue
from .network import (
    DelayPolicy,
    Envelope,
    FixedDelay,
    FunctionDelay,
    MaxDelay,
    MinDelay,
    Network,
    NetworkStats,
    TargetedDelay,
    UniformDelay,
)
from .process import Process, Timer
from .recorder import (
    FullTraceRecorder,
    MessageSample,
    OnlineMetricsRecorder,
    OnlineMetricsSummary,
    Recorder,
    RecorderError,
)
from .trace import ProcessTrace, ResyncEvent, Trace

__all__ = [
    "Event",
    "EventQueue",
    "HardwareClock",
    "FixedRateClock",
    "PiecewiseLinearClock",
    "drifting_clock",
    "fastest_clock",
    "slowest_clock",
    "rate_bounds",
    "spread_offsets",
    "DelayPolicy",
    "FixedDelay",
    "MaxDelay",
    "MinDelay",
    "UniformDelay",
    "TargetedDelay",
    "FunctionDelay",
    "Network",
    "NetworkStats",
    "Envelope",
    "Process",
    "Timer",
    "Recorder",
    "RecorderError",
    "FullTraceRecorder",
    "MessageSample",
    "OnlineMetricsRecorder",
    "OnlineMetricsSummary",
    "Simulation",
    "Trace",
    "ProcessTrace",
    "ResyncEvent",
]
