"""Discrete-event queue primitives.

The simulator is a classic discrete-event system: every future action is an
:class:`Event` with an absolute (real) firing time and a callback.  Events
fired at the same time are ordered by insertion sequence number, which makes
runs fully deterministic for a given seed and scenario.

Cancellation is lazy: cancelling an event marks it and the queue skips it on
pop.  This keeps the queue a plain binary heap and avoids O(n) removal.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute real time at which the event fires.
    seq:
        Tie-breaking sequence number (insertion order).
    action:
        Callable executed when the event fires.
    args:
        Positional arguments passed to ``action``.  Scheduling hot paths (one
        event per message) pass a bound method plus its argument here instead
        of allocating a fresh closure per event.
    cancelled:
        Lazily-set cancellation flag; cancelled events are skipped.
    """

    time: float
    seq: int
    action: Callable[..., None] = field(compare=False)
    args: tuple = field(default=(), compare=False)
    cancelled: bool = field(default=False, compare=False)

    def fire(self) -> None:
        """Execute the event's callback."""
        self.action(*self.args)

    def cancel(self) -> None:
        """Mark this event as cancelled; it will never fire."""
        self.cancelled = True


class EventQueue:
    """A time-ordered queue of :class:`Event` objects.

    The queue guarantees FIFO order among events scheduled for the same time,
    which is what makes simulations reproducible.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, action: Callable[..., None], *args) -> Event:
        """Schedule ``action(*args)`` at absolute time ``time`` and return its event."""
        if time != time:  # NaN guard
            raise ValueError("event time must not be NaN")
        event = Event(time=time, seq=next(self._counter), action=action, args=args)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (no-op if already cancelled)."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1

    def pop(self) -> Optional[Event]:
        """Pop and return the next live event, or ``None`` if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
