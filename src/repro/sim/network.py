"""Message-passing network with adversarially controlled delays.

The Srikanth-Toueg model assumes a fully connected, reliable network in which
every message between correct processes is delivered within ``tdel`` real time
(and not before ``tmin``, which defaults to 0).  The adversary chooses the
actual delay of every message within those bounds.  Delay *policies* encode
the adversary's strategy: uniform random, always-max, targeted (deliver fast
to one set of nodes and slowly to another to maximise skew), or an arbitrary
user-supplied function.

Faulty senders are subject to the same delay bounds -- in the Srikanth-Toueg
model faulty processes cannot make messages travel faster than the network
allows -- but they may of course send anything to anyone at any time.
"""

from __future__ import annotations

import itertools
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from .engine import Simulation
    from .recorder import Recorder


@dataclass(frozen=True, slots=True)
class Envelope:
    """A message in flight (or delivered).

    The payload is opaque to the network; algorithms define their own message
    dataclasses in :mod:`repro.core.messages`.
    """

    msg_id: int
    sender: int
    dest: int
    payload: object
    send_time: float
    deliver_time: float


class DelayPolicy(ABC):
    """Strategy choosing the delay of each message within ``[tmin, tdel]``."""

    @abstractmethod
    def delay(self, sender: int, dest: int, payload: object, time: float, rng: random.Random) -> float:
        """Return the delay for this message (will be clamped to the bounds)."""


class FixedDelay(DelayPolicy):
    """Every message takes exactly ``value`` time."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def delay(self, sender, dest, payload, time, rng):
        return self.value


class MaxDelay(DelayPolicy):
    """Every message takes the maximum allowed delay (worst-case latency)."""

    def delay(self, sender, dest, payload, time, rng):
        return float("inf")  # clamped to tdel by the network


class MinDelay(DelayPolicy):
    """Every message takes the minimum allowed delay."""

    def delay(self, sender, dest, payload, time, rng):
        return 0.0  # clamped to tmin by the network


class UniformDelay(DelayPolicy):
    """Delays drawn independently and uniformly from ``[tmin, tdel]``."""

    def delay(self, sender, dest, payload, time, rng):
        return rng.random()  # scaled into [tmin, tdel] by the network


class TargetedDelay(DelayPolicy):
    """Deliver quickly to a favoured set of nodes and slowly to the rest.

    This is the canonical skew-maximising adversary: it tries to make one
    group of correct processes observe every event ``tdel - tmin`` earlier
    than the other group, pushing their clocks apart by the full delay
    uncertainty each round.
    """

    def __init__(self, fast_destinations: Iterable[int], jitter: float = 0.0) -> None:
        self.fast_destinations = frozenset(fast_destinations)
        self.jitter = float(jitter)

    def delay(self, sender, dest, payload, time, rng):
        base = 0.0 if dest in self.fast_destinations else float("inf")
        if self.jitter > 0.0:
            base = base if base == 0.0 else base
            return base + rng.uniform(0.0, self.jitter)
        return base


class FunctionDelay(DelayPolicy):
    """Adapter turning a plain callable into a delay policy."""

    def __init__(self, fn: Callable[[int, int, object, float, random.Random], float]) -> None:
        self.fn = fn

    def delay(self, sender, dest, payload, time, rng):
        return self.fn(sender, dest, payload, time, rng)


@dataclass
class NetworkStats:
    """Counters maintained by the network for message-complexity analysis."""

    total_messages: int = 0
    messages_by_sender: dict[int, int] = field(default_factory=dict)
    messages_by_type: dict[str, int] = field(default_factory=dict)

    def record(self, sender: int, payload: object) -> None:
        self.total_messages += 1
        self.messages_by_sender[sender] = self.messages_by_sender.get(sender, 0) + 1
        kind = type(payload).__name__
        self.messages_by_type[kind] = self.messages_by_type.get(kind, 0) + 1


class Network:
    """Fully connected point-to-point network bound to a :class:`Simulation`.

    Processes register a delivery callback under their process id; sending a
    message schedules a delivery event after a policy-chosen delay clamped to
    ``[tmin, tdel]``.
    """

    def __init__(
        self,
        sim: "Simulation",
        tmin: float,
        tdel: float,
        policy: Optional[DelayPolicy] = None,
        seed: int = 0,
        recorder: Optional["Recorder"] = None,
    ) -> None:
        if tdel <= 0:
            raise ValueError(f"tdel must be positive, got {tdel}")
        if not 0 <= tmin <= tdel:
            raise ValueError(f"tmin must satisfy 0 <= tmin <= tdel, got tmin={tmin}, tdel={tdel}")
        self.sim = sim
        self.tmin = float(tmin)
        self.tdel = float(tdel)
        self.policy = policy or UniformDelay()
        self.rng = random.Random(seed)
        self.stats = NetworkStats()
        self.recorder = recorder
        self._handlers: dict[int, Callable[[Envelope], None]] = {}
        self._msg_ids = itertools.count()
        self._dropped_destinations: set[int] = set()

    # -- registration -------------------------------------------------------

    def register(self, pid: int, handler: Callable[[Envelope], None]) -> None:
        """Register the delivery callback for process ``pid``."""
        self._handlers[pid] = handler

    def unregister(self, pid: int) -> None:
        """Remove a process from the network (e.g. after a crash)."""
        self._handlers.pop(pid, None)

    def participants(self) -> list[int]:
        """Process ids currently attached to the network."""
        return sorted(self._handlers)

    def drop_deliveries_to(self, pid: int) -> None:
        """Silently drop all future deliveries to ``pid`` (crash modelling)."""
        self._dropped_destinations.add(pid)

    # -- sending ------------------------------------------------------------

    def _choose_delay(self, sender: int, dest: int, payload: object) -> float:
        raw = self.policy.delay(sender, dest, payload, self.sim.now, self.rng)
        if raw != raw:  # NaN guard
            raise ValueError("delay policy returned NaN")
        if isinstance(self.policy, UniformDelay):
            # UniformDelay returns a unit sample; scale it into the window.
            return self.tmin + raw * (self.tdel - self.tmin)
        return min(self.tdel, max(self.tmin, raw))

    def send(self, sender: int, dest: int, payload: object, delay: Optional[float] = None) -> Envelope:
        """Send ``payload`` from ``sender`` to ``dest``.

        ``delay`` may be supplied explicitly (used by adversarial senders that
        coordinate with the delay adversary); it is still clamped to the
        model's ``[tmin, tdel]`` window, so not even faulty processes can beat
        the minimum delay or exceed the delivery bound.
        """
        if delay is None:
            chosen = self._choose_delay(sender, dest, payload)
        else:
            chosen = min(self.tdel, max(self.tmin, float(delay)))
        send_time = self.sim.now
        envelope = Envelope(
            msg_id=next(self._msg_ids),
            sender=sender,
            dest=dest,
            payload=payload,
            send_time=send_time,
            deliver_time=send_time + chosen,
        )
        self.stats.record(sender, payload)
        if self.recorder is not None:
            self.recorder.on_message(envelope)
        # Bound method + args instead of a per-message closure: this is the
        # hottest allocation site of a run (one event per message sent).
        self.sim.schedule_at(envelope.deliver_time, self._deliver, envelope)
        return envelope

    def broadcast(self, sender: int, payload: object, include_self: bool = False) -> list[Envelope]:
        """Send ``payload`` to every registered process (excluding the sender by default)."""
        envelopes = []
        for pid in self.participants():
            if pid == sender and not include_self:
                continue
            envelopes.append(self.send(sender, pid, payload))
        return envelopes

    def multicast(self, sender: int, destinations: Iterable[int], payload: object) -> list[Envelope]:
        """Send ``payload`` to an explicit set of destinations (two-faced sends)."""
        return [self.send(sender, dest, payload) for dest in destinations]

    # -- delivery -----------------------------------------------------------

    def _deliver(self, envelope: Envelope) -> None:
        if envelope.dest in self._dropped_destinations:
            return
        handler = self._handlers.get(envelope.dest)
        if handler is None:
            return
        handler(envelope)
