"""Named adversary strategies.

A *strategy* turns the set of faulty process ids into concrete
:class:`~repro.sim.process.Process` instances (one per faulty id) given the
shared :class:`~repro.faults.behaviors.AdversaryContext`.  Strategies are
registered under short names so scenarios, tests and benchmarks can refer to
them declaratively ("run E10 under every registered attack").

Strategies within the resilience bound (the guarantees must survive them):

``silent``          faulty processes never send anything
``crash``           behave correctly, then crash mid-run
``eager``           support every round as early as possible
``two_faced``       participate correctly but only toward half of the honest processes
``alternating``     two-faced with the favoured half switching every round
``laggard``         participate correctly but always at the maximum allowed delay
``random_silence``  participate correctly but drop each own broadcast at random
``random_two_faced`` two-faced with the favoured half coin-flipped per broadcast
``random_laggard``  participate correctly with a random in-bounds delay per message
``forge_flood``     spam forged signatures, bogus proofs and garbage
``replay``          replay every observed message later
``skew_max``        eager support combined with two-faced sends (worst observed skew)

Strategies used only *above* the resilience bound (they are expected to break
the guarantees; experiments E3/E4 verify that they indeed do):

``rushing_cabal``   >= f+1 signers fabricate acceptance proofs (authenticated variant)
``echo_cabal``      >= f+1 echoers start echo avalanches (non-authenticated variant)
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.bounds import AUTH, ECHO
from ..crypto.signatures import KeyStore
from ..sim.process import Process
from .behaviors import (
    AdversaryContext,
    AlternatingTwoFacedAuth,
    AlternatingTwoFacedEcho,
    CrashFaultyAuth,
    CrashFaultyEcho,
    EagerEchoer,
    EagerSigner,
    EchoCabalMember,
    ForgeAndFlood,
    LaggardAuth,
    LaggardEcho,
    RandomLaggardAuth,
    RandomLaggardEcho,
    RandomSilenceAuth,
    RandomSilenceEcho,
    RandomTwoFacedAuth,
    RandomTwoFacedEcho,
    ReplayAttacker,
    RushingCabalLeader,
    SilentFaulty,
    TwoFacedAuth,
    TwoFacedEcho,
)

#: Strategies that the algorithms must tolerate (used by E1/E10 and the test suite).
TOLERATED_ATTACKS = (
    "silent",
    "crash",
    "eager",
    "two_faced",
    "alternating",
    "laggard",
    "random_silence",
    "random_two_faced",
    "random_laggard",
    "forge_flood",
    "replay",
    "skew_max",
)

#: Strategies that are only meaningful above the resilience threshold.
BREAKING_ATTACKS = ("rushing_cabal", "echo_cabal")

ALL_ATTACKS = TOLERATED_ATTACKS + BREAKING_ATTACKS

StrategyFactory = Callable[[int, AdversaryContext, str, Optional[KeyStore]], Process]


def _auth_kwargs(context: AdversaryContext, pid: int, keystore: KeyStore) -> dict:
    return {
        "params": context.params,
        "keystore": keystore,
        "secret_key": keystore.secret_key(pid),
    }


def _make_silent(pid, context, algorithm, keystore):
    return SilentFaulty(pid, context)


def _make_crash(pid, context, algorithm, keystore):
    crash_time = 2.5 * context.params.period
    if algorithm == AUTH and keystore is not None:
        return CrashFaultyAuth(pid, crash_time=crash_time, **_auth_kwargs(context, pid, keystore))
    return CrashFaultyEcho(pid, context.params, crash_time=crash_time)


def _make_eager(pid, context, algorithm, keystore):
    if algorithm == AUTH:
        return EagerSigner(pid, context)
    return EagerEchoer(pid, context)


def _make_two_faced(pid, context, algorithm, keystore):
    if algorithm == AUTH and keystore is not None:
        return TwoFacedAuth(pid, context=context, **_auth_kwargs(context, pid, keystore))
    return TwoFacedEcho(pid, context.params, context=context)


def _make_alternating(pid, context, algorithm, keystore):
    if algorithm == AUTH and keystore is not None:
        return AlternatingTwoFacedAuth(pid, context=context, **_auth_kwargs(context, pid, keystore))
    return AlternatingTwoFacedEcho(pid, context.params, context=context)


def _make_laggard(pid, context, algorithm, keystore):
    if algorithm == AUTH and keystore is not None:
        return LaggardAuth(pid, **_auth_kwargs(context, pid, keystore))
    return LaggardEcho(pid, context.params)


def _make_random_silence(pid, context, algorithm, keystore):
    if algorithm == AUTH and keystore is not None:
        return RandomSilenceAuth(pid, context=context, **_auth_kwargs(context, pid, keystore))
    return RandomSilenceEcho(pid, context.params, context=context)


def _make_random_two_faced(pid, context, algorithm, keystore):
    if algorithm == AUTH and keystore is not None:
        return RandomTwoFacedAuth(pid, context=context, **_auth_kwargs(context, pid, keystore))
    return RandomTwoFacedEcho(pid, context.params, context=context)


def _make_random_laggard(pid, context, algorithm, keystore):
    if algorithm == AUTH and keystore is not None:
        return RandomLaggardAuth(pid, context=context, **_auth_kwargs(context, pid, keystore))
    return RandomLaggardEcho(pid, context.params, context=context)


def _make_forge_flood(pid, context, algorithm, keystore):
    return ForgeAndFlood(pid, context)


def _make_replay(pid, context, algorithm, keystore):
    return ReplayAttacker(pid, context)


def _make_skew_max(pid, context, algorithm, keystore):
    # Alternate between eager supporters and two-faced participants so that the
    # adversary both accelerates acceptances and starves half of the system.
    index = context.faulty_pids.index(pid)
    if index % 2 == 0:
        return _make_eager(pid, context, algorithm, keystore)
    return _make_two_faced(pid, context, algorithm, keystore)


def _make_rushing_cabal(pid, context, algorithm, keystore):
    if pid == min(context.faulty_pids):
        return RushingCabalLeader(pid, context)
    return SilentFaulty(pid, context)


def _make_echo_cabal(pid, context, algorithm, keystore):
    return EchoCabalMember(pid, context)


_REGISTRY: dict[str, StrategyFactory] = {
    "silent": _make_silent,
    "crash": _make_crash,
    "eager": _make_eager,
    "two_faced": _make_two_faced,
    "alternating": _make_alternating,
    "laggard": _make_laggard,
    "random_silence": _make_random_silence,
    "random_two_faced": _make_random_two_faced,
    "random_laggard": _make_random_laggard,
    "forge_flood": _make_forge_flood,
    "replay": _make_replay,
    "skew_max": _make_skew_max,
    "rushing_cabal": _make_rushing_cabal,
    "echo_cabal": _make_echo_cabal,
}


def available_attacks() -> list[str]:
    """Names of all registered adversary strategies."""
    return sorted(_REGISTRY)


def register_attack(name: str, factory: StrategyFactory) -> None:
    """Register a custom strategy (used by tests and extensions)."""
    _REGISTRY[name] = factory


def make_faulty_processes(
    attack: str,
    context: AdversaryContext,
    algorithm: str = AUTH,
    keystore: Optional[KeyStore] = None,
) -> list[Process]:
    """Instantiate one faulty process per id in ``context.faulty_pids``."""
    if attack not in _REGISTRY:
        raise ValueError(f"unknown attack {attack!r}; available: {available_attacks()}")
    if algorithm not in (AUTH, ECHO):
        raise ValueError(f"unknown algorithm {algorithm!r}")
    factory = _REGISTRY[attack]
    return [factory(pid, context, algorithm, keystore) for pid in context.faulty_pids]


def breaking_attack_for(algorithm: str) -> str:
    """The canonical above-threshold attack for the given algorithm."""
    return "rushing_cabal" if algorithm == AUTH else "echo_cabal"
