"""Byzantine fault behaviours.

The Srikanth-Toueg guarantees are quantified over *all* behaviours of up to
``f`` faulty processes.  A simulation can only ever exercise specific
behaviours, so this module provides a library of named attacks, from benign
(crash, silence) to actively malicious (early signing, two-faced sends,
forgery and flooding, replay) and, beyond the resilience threshold, attacks
that actually break the algorithms (the "cabal" behaviours used by the
resilience experiments E3/E4).

All behaviours are ordinary :class:`~repro.sim.process.Process` subclasses
marked ``faulty = True``; being adversarial, they are allowed to read real
time, coordinate through shared :class:`AdversaryContext` state, and use the
secret keys of the *faulty* processes (but of course not of honest ones --
the signature simulation enforces that).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..core.auth_sync import AuthSyncProcess
from ..core.messages import (
    EchoMessage,
    GarbageMessage,
    InitMessage,
    RoundContent,
    SignatureBundle,
    SignedRound,
)
from ..core.params import SyncParams
from ..core.unauth_sync import EchoSyncProcess
from ..crypto.signatures import KeyStore, SecretKey, forge_attempt, sign
from ..sim.process import Process


@dataclass
class AdversaryContext:
    """Shared knowledge of the adversary controlling all faulty processes."""

    params: SyncParams
    faulty_pids: list[int]
    honest_pids: list[int]
    #: Honest processes the adversary favours (receives messages early / first).
    fast_group: list[int] = field(default_factory=list)
    #: Honest processes the adversary disfavours.
    slow_group: list[int] = field(default_factory=list)
    keystore: Optional[KeyStore] = None
    #: Secret keys of the faulty processes only.
    secret_keys: dict[int, SecretKey] = field(default_factory=dict)
    seed: int = 0

    @classmethod
    def build(
        cls,
        params: SyncParams,
        faulty_pids: list[int],
        honest_pids: list[int],
        keystore: Optional[KeyStore] = None,
        seed: int = 0,
    ) -> "AdversaryContext":
        """Create a context, splitting the honest processes into a fast and a slow group."""
        half = max(1, len(honest_pids) // 2)
        secret_keys = {}
        if keystore is not None:
            secret_keys = {pid: keystore.secret_key(pid) for pid in faulty_pids if keystore.has_participant(pid)}
        return cls(
            params=params,
            faulty_pids=list(faulty_pids),
            honest_pids=list(honest_pids),
            fast_group=list(honest_pids[:half]),
            slow_group=list(honest_pids[half:]),
            keystore=keystore,
            secret_keys=secret_keys,
            seed=seed,
        )


class SilentFaulty(Process):
    """A faulty process that never sends anything (equivalent to an initial crash)."""

    faulty = True

    def __init__(self, pid: int, context: AdversaryContext) -> None:
        super().__init__(pid)
        self.context = context


class CrashFaultyAuth(AuthSyncProcess):
    """Runs the authenticated algorithm correctly, then crashes at ``crash_time``."""

    faulty = True

    def __init__(self, pid, params, keystore, secret_key, crash_time: float, **kwargs) -> None:
        super().__init__(pid, params, keystore, secret_key, **kwargs)
        self.crash_time = crash_time

    def on_start(self) -> None:
        super().on_start()
        self.sim.schedule_at(self.crash_time, self.halt)


class CrashFaultyEcho(EchoSyncProcess):
    """Runs the non-authenticated algorithm correctly, then crashes at ``crash_time``."""

    faulty = True

    def __init__(self, pid, params, crash_time: float, **kwargs) -> None:
        super().__init__(pid, params, **kwargs)
        self.crash_time = crash_time

    def on_start(self) -> None:
        super().on_start()
        self.sim.schedule_at(self.crash_time, self.halt)


class EagerSigner(Process):
    """Signs and broadcasts every round as early as it plausibly can (authenticated).

    The goal is to accelerate acceptances: honest processes still need one
    honest signature, so the attack pushes every acceptance to the earliest
    honest broadcast, maximising the spread between fast- and slow-clock
    honest processes.  Combined with a targeted delay policy this is the
    canonical skew-maximising adversary within the resilience bound.
    """

    faulty = True

    def __init__(self, pid: int, context: AdversaryContext, rounds: int = 200, early_factor: float = 0.75) -> None:
        super().__init__(pid)
        self.context = context
        self.rounds = rounds
        self.early_factor = early_factor

    def on_start(self) -> None:
        secret = self.context.secret_keys.get(self.pid)
        if secret is None:
            return
        period = self.context.params.period
        for k in range(1, self.rounds + 1):
            when = max(0.0, self.early_factor * k * period)
            self.sim.schedule_at(when, lambda k=k, s=secret: self._sign_round(k, s))

    def _sign_round(self, round_: int, secret: SecretKey) -> None:
        if self.halted:
            return
        signature = sign(secret, RoundContent(round_))
        self.broadcast(SignedRound(round=round_, signature=signature))


class EagerEchoer(Process):
    """Sends init and echo messages for every round as early as possible (echo variant)."""

    faulty = True

    def __init__(self, pid: int, context: AdversaryContext, rounds: int = 200, early_factor: float = 0.75) -> None:
        super().__init__(pid)
        self.context = context
        self.rounds = rounds
        self.early_factor = early_factor

    def on_start(self) -> None:
        period = self.context.params.period
        for k in range(1, self.rounds + 1):
            when = max(0.0, self.early_factor * k * period)
            self.sim.schedule_at(when, lambda k=k: self._push_round(k))

    def _push_round(self, round_: int) -> None:
        if self.halted:
            return
        self.broadcast(InitMessage(round=round_))
        self.broadcast(EchoMessage(round=round_))


class TwoFacedAuth(AuthSyncProcess):
    """Participates correctly but only talks to the adversary's favoured group.

    The disfavoured honest processes never hear from it, which delays their
    acceptances by up to one relay hop relative to the favoured group.
    """

    faulty = True

    def __init__(self, pid, params, keystore, secret_key, context: AdversaryContext, **kwargs) -> None:
        super().__init__(pid, params, keystore, secret_key, **kwargs)
        self.context = context

    def broadcast(self, payload: object) -> None:  # type: ignore[override]
        self.multicast(self.context.fast_group, payload)


class TwoFacedEcho(EchoSyncProcess):
    """Echo-variant process that echoes only toward the favoured group."""

    faulty = True

    def __init__(self, pid, params, context: AdversaryContext, **kwargs) -> None:
        super().__init__(pid, params, **kwargs)
        self.context = context

    def broadcast(self, payload: object) -> None:  # type: ignore[override]
        self.multicast(self.context.fast_group, payload)


#: Per-broadcast drop probability of the ``random_silence`` strategy, and the
#: probability with which ``random_two_faced`` favours the fast group.  The
#: vector kernel's exact-replay engine mirrors these values (and each
#: behaviour's exact draw table) to replay the ``Random(seed + pid)`` streams
#: draw-for-draw; ``tests/test_kernel_parity.py`` pins the two copies equal.
RANDOM_DROP_PROBABILITY = 0.5
RANDOM_FAST_BIAS = 0.5


class RandomSilenceAuth(AuthSyncProcess):
    """Participates correctly but drops each of its own broadcasts at random.

    Draw table (replayed by the vector kernel): exactly one ``random()`` per
    broadcast attempt, drawn before the halt check and regardless of whether
    the broadcast is then sent or dropped.
    """

    faulty = True

    def __init__(self, pid, params, keystore, secret_key, context: AdversaryContext, **kwargs) -> None:
        super().__init__(pid, params, keystore, secret_key, **kwargs)
        self.context = context
        self._rng = random.Random(context.seed + pid)

    def broadcast(self, payload: object) -> None:  # type: ignore[override]
        if self._rng.random() < RANDOM_DROP_PROBABILITY:
            return
        super().broadcast(payload)


class RandomSilenceEcho(EchoSyncProcess):
    """Echo-variant random silence: one ``random()`` per broadcast attempt."""

    faulty = True

    def __init__(self, pid, params, context: AdversaryContext, **kwargs) -> None:
        super().__init__(pid, params, **kwargs)
        self.context = context
        self._rng = random.Random(context.seed + pid)

    def broadcast(self, payload: object) -> None:  # type: ignore[override]
        if self._rng.random() < RANDOM_DROP_PROBABILITY:
            return
        super().broadcast(payload)


class RandomTwoFacedAuth(AuthSyncProcess):
    """Two-faced participant whose favoured half is re-flipped per broadcast.

    Draw table (replayed by the vector kernel): exactly one ``random()`` per
    broadcast, drawn before any network-delay draws for the chosen group.
    """

    faulty = True

    def __init__(self, pid, params, keystore, secret_key, context: AdversaryContext, **kwargs) -> None:
        super().__init__(pid, params, keystore, secret_key, **kwargs)
        self.context = context
        self._rng = random.Random(context.seed + pid)

    def broadcast(self, payload: object) -> None:  # type: ignore[override]
        group = (
            self.context.fast_group
            if self._rng.random() < RANDOM_FAST_BIAS
            else self.context.slow_group
        )
        self.multicast(group or self.context.honest_pids, payload)


class RandomTwoFacedEcho(EchoSyncProcess):
    """Echo-variant coin-flipped two-faced participant."""

    faulty = True

    def __init__(self, pid, params, context: AdversaryContext, **kwargs) -> None:
        super().__init__(pid, params, **kwargs)
        self.context = context
        self._rng = random.Random(context.seed + pid)

    def broadcast(self, payload: object) -> None:  # type: ignore[override]
        group = (
            self.context.fast_group
            if self._rng.random() < RANDOM_FAST_BIAS
            else self.context.slow_group
        )
        self.multicast(group or self.context.honest_pids, payload)


class RandomLaggardAuth(AuthSyncProcess):
    """Participates correctly with an independent in-bounds random delay per message.

    Draw table (replayed by the vector kernel): one ``uniform(tmin, tdel)``
    per destination, in ``other_peers()`` (ascending pid) order; the explicit
    delay bypasses the network's delay policy (and its RNG) entirely.
    """

    faulty = True

    def __init__(self, pid, params, keystore, secret_key, context: AdversaryContext, **kwargs) -> None:
        super().__init__(pid, params, keystore, secret_key, **kwargs)
        self.context = context
        self._rng = random.Random(context.seed + pid)

    def broadcast(self, payload: object) -> None:  # type: ignore[override]
        if self.halted:
            return
        for pid in self.other_peers():
            self.send(pid, payload, delay=self._rng.uniform(self.params.tmin, self.params.tdel))


class RandomLaggardEcho(EchoSyncProcess):
    """Echo-variant random laggard: correct content, random in-bounds delays."""

    faulty = True

    def __init__(self, pid, params, context: AdversaryContext, **kwargs) -> None:
        super().__init__(pid, params, **kwargs)
        self.context = context
        self._rng = random.Random(context.seed + pid)

    def broadcast(self, payload: object) -> None:  # type: ignore[override]
        if self.halted:
            return
        for pid in self.other_peers():
            self.send(pid, payload, delay=self._rng.uniform(self.params.tmin, self.params.tdel))


class LaggardAuth(AuthSyncProcess):
    """Participates correctly but delivers everything at the latest allowed moment.

    A "slow but formally correct" faulty node: every message it sends takes the
    full delay bound.  It cannot hurt safety (the bound is part of the model),
    but it maximises the timing uncertainty it contributes.
    """

    faulty = True

    def broadcast(self, payload: object) -> None:  # type: ignore[override]
        if self.halted:
            return
        for pid in self.other_peers():
            self.send(pid, payload, delay=self.params.tdel)


class LaggardEcho(EchoSyncProcess):
    """Echo-variant laggard: correct content, always worst-case delay."""

    faulty = True

    def broadcast(self, payload: object) -> None:  # type: ignore[override]
        if self.halted:
            return
        for pid in self.other_peers():
            self.send(pid, payload, delay=self.params.tdel)


class AlternatingTwoFacedAuth(AuthSyncProcess):
    """Supports even rounds only toward one half of the system and odd rounds toward the other.

    A time-varying variant of the two-faced attack: whichever group is starved
    of this signer's support in a given round must rely on the remaining
    correct signers plus the relay property.
    """

    faulty = True

    def __init__(self, pid, params, keystore, secret_key, context: "AdversaryContext", **kwargs) -> None:
        super().__init__(pid, params, keystore, secret_key, **kwargs)
        self.context = context

    def _destinations(self) -> list[int]:
        group = self.context.fast_group if self.current_round is not None and self.current_round % 2 == 0 else self.context.slow_group
        return group or self.context.honest_pids

    def broadcast(self, payload: object) -> None:  # type: ignore[override]
        if self.halted:
            return
        self.multicast(self._destinations(), payload)


class AlternatingTwoFacedEcho(EchoSyncProcess):
    """Echo-variant alternating two-faced participant."""

    faulty = True

    def __init__(self, pid, params, context: "AdversaryContext", **kwargs) -> None:
        super().__init__(pid, params, **kwargs)
        self.context = context

    def _destinations(self) -> list[int]:
        group = self.context.fast_group if self.current_round is not None and self.current_round % 2 == 0 else self.context.slow_group
        return group or self.context.honest_pids

    def broadcast(self, payload: object) -> None:  # type: ignore[override]
        if self.halted:
            return
        self.multicast(self._destinations(), payload)


class ForgeAndFlood(Process):
    """Broadcasts forged honest signatures, bogus bundles and garbage at a steady rate.

    None of it should have any effect: forged signatures fail verification and
    garbage messages are ignored.  This behaviour exists to validate input
    hardening and to measure that the honest algorithms' guarantees are
    unaffected by junk traffic.
    """

    faulty = True

    def __init__(self, pid: int, context: AdversaryContext, interval: float = 0.05, rounds: int = 200) -> None:
        super().__init__(pid)
        self.context = context
        self.interval = interval
        self.rounds = rounds
        self._rng = random.Random(context.seed + pid)

    def on_start(self) -> None:
        self.sim.schedule_after(self.interval, self._flood)

    def _flood(self) -> None:
        if self.halted:
            return
        victim = self._rng.choice(self.context.honest_pids)
        round_ = self._rng.randint(1, self.rounds)
        forged = forge_attempt(victim, RoundContent(round_), guess=self._rng.getrandbits(32))
        self.broadcast(SignedRound(round=round_, signature=forged))
        self.broadcast(SignatureBundle(round=round_, signatures=(forged,)))
        self.broadcast(GarbageMessage(blob=f"junk-{self._rng.getrandbits(16)}"))
        self.broadcast(InitMessage(round=round_))
        self.sim.schedule_after(self.interval, self._flood)


class ReplayAttacker(Process):
    """Records honest messages and replays them later (stale rounds, duplicates).

    Replayed signatures are genuine, so the only defence is the round floor in
    the trackers: stale rounds are ignored and duplicates change nothing.
    """

    faulty = True

    def __init__(
        self,
        pid: int,
        context: AdversaryContext,
        replay_delay: float = 0.5,
        max_replays: int = 500,
    ) -> None:
        super().__init__(pid)
        self.context = context
        self.replay_delay = replay_delay
        self.max_replays = max_replays
        self._replayed = 0

    def on_message(self, sender: int, payload: object) -> None:
        # Only honest traffic is interesting to replay; replaying other faulty
        # nodes' (possibly replayed) messages would just amplify noise without
        # adding adversarial power, so the cap below also keeps the attack
        # from flooding the simulation with exponentially many copies.
        if sender in self.context.faulty_pids:
            return
        if self._replayed >= self.max_replays:
            return
        if isinstance(payload, (SignedRound, SignatureBundle, InitMessage, EchoMessage)):
            self._replayed += 1
            self.sim.schedule_after(self.replay_delay, lambda p=payload: self._replay(p))

    def _replay(self, payload: object) -> None:
        if not self.halted:
            self.broadcast(payload)


class RushingCabalLeader(Process):
    """Breaks the authenticated algorithm when the cabal has at least ``f + 1`` members.

    With ``f + 1`` colluding signers the cabal can fabricate complete
    acceptance proofs for arbitrary rounds without any honest participation
    (unforgeability no longer bites).  At ``attack_time`` the leader sends
    proofs for rounds ``1 .. pump_rounds`` to the favoured group only, driving
    their clocks forward by ``pump_rounds * P`` essentially instantly, while
    the disfavoured group only catches up through honest relays one delay
    later -- a skew far beyond the bound, demonstrating that ``n > 2f`` is
    necessary.
    """

    faulty = True

    def __init__(self, pid: int, context: AdversaryContext, attack_time: float = 0.1, pump_rounds: int = 25) -> None:
        super().__init__(pid)
        self.context = context
        self.attack_time = attack_time
        self.pump_rounds = pump_rounds

    def on_start(self) -> None:
        self.sim.schedule_at(self.attack_time, self._attack)

    def _attack(self) -> None:
        if self.halted:
            return
        secrets = list(self.context.secret_keys.values())
        threshold = self.context.params.f + 1
        if len(secrets) < threshold:
            return  # not enough colluders to forge an acceptance proof
        for k in range(1, self.pump_rounds + 1):
            content = RoundContent(k)
            signatures = tuple(sign(secret, content) for secret in secrets[:threshold])
            bundle = SignatureBundle(round=k, signatures=signatures)
            self.multicast(self.context.fast_group, bundle)


class EchoCabalMember(Process):
    """Breaks the non-authenticated algorithm when the cabal has at least ``f + 1`` members.

    ``f + 1`` colluding echoes clear the honest echo threshold, so the cabal
    can start an avalanche of echoes for arbitrary rounds with no honest init.
    All members send inits and echoes for rounds ``1 .. pump_rounds`` to the
    favoured group at ``attack_time``.
    """

    faulty = True

    def __init__(self, pid: int, context: AdversaryContext, attack_time: float = 0.1, pump_rounds: int = 25) -> None:
        super().__init__(pid)
        self.context = context
        self.attack_time = attack_time
        self.pump_rounds = pump_rounds

    def on_start(self) -> None:
        self.sim.schedule_at(self.attack_time, self._attack)

    def _attack(self) -> None:
        if self.halted:
            return
        for k in range(1, self.pump_rounds + 1):
            self.multicast(self.context.fast_group, InitMessage(round=k))
            self.multicast(self.context.fast_group, EchoMessage(round=k))
