"""Write BENCH_PR2.json: per-experiment wall times plus full-vs-metrics timing.

CI's quick-benchmark job runs this after the smoke suite and uploads the JSON
as an artifact, seeding the performance trajectory of the observation
refactor: every experiment's wall time, and a head-to-head of the full-trace
versus metrics-only observation paths on an E9-style scaling grid.

Usage::

    python scripts/bench_pr2.py [--quick] [--output BENCH_PR2.json]

Timings always run against a cold result cache (caching is disabled for the
measured runs), so they measure simulation + observation, not cache reads.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.experiments import EXPERIMENTS
from repro.experiments.common import adversarial_scenario, default_params
from repro.runner.config import configure as configure_runner
from repro.workloads.scenarios import run_scenario


def time_experiments(quick: bool) -> dict:
    timings = {}
    for exp_id, experiment in EXPERIMENTS.items():
        start = time.perf_counter()
        experiment.run(quick=quick)
        timings[exp_id] = {
            "claim": experiment.claim,
            "wall_time_s": round(time.perf_counter() - start, 4),
        }
    return timings


def time_trace_levels(quick: bool) -> dict:
    """Full vs metrics-only observation on an E9-style grid, including 4x n."""
    rounds = 5 if quick else 12
    sizes = [7, 14, 28] if quick else [7, 14, 28, 42]
    comparison = {}
    for n in sizes:
        scenario = adversarial_scenario(
            default_params(n, authenticated=True),
            "auth",
            attack="skew_max",
            rounds=rounds,
            seed=100 + n,
        )
        entry = {}
        for level in ("full", "metrics"):
            start = time.perf_counter()
            result = run_scenario(scenario, trace_level=level)
            entry[level] = {
                "wall_time_s": round(time.perf_counter() - start, 4),
                "precision": result.precision,
                "total_messages": result.total_messages,
            }
        entry["speedup_full_over_metrics"] = round(
            entry["full"]["wall_time_s"] / max(entry["metrics"]["wall_time_s"], 1e-9), 3
        )
        comparison[f"n={n}"] = entry
    return {"rounds": rounds, "grid": comparison}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small grids (CI smoke)")
    parser.add_argument("--output", default="BENCH_PR2.json", help="output path")
    args = parser.parse_args()

    # Cold-cache, serial timings: measure the work, not the cache or the pool.
    configure_runner(jobs=1, use_cache=False)

    summary = {
        "schema": "bench-pr2/1",
        "quick": args.quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "experiments": time_experiments(args.quick),
        "trace_levels": time_trace_levels(args.quick),
    }
    output = Path(args.output)
    output.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    total = sum(entry["wall_time_s"] for entry in summary["experiments"].values())
    print(f"wrote {output} ({len(summary['experiments'])} experiments, {total:.2f}s total)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
