"""Write BENCH_PR10.json: the tracked perf baseline of the execution stack.

The canonical benchmark (successor of the PR-9 script) times a fixed
experiment grid three ways -- full trace (historical poll), metrics-only with
the static per-event round poll, and metrics-only with the adaptive horizon --
plus a shard-scaling grid (1/2/4 shards of a replicated largest cell through
the sharded backend), a backend-scaling grid (the same replicated cell on the
``pool`` and ``subprocess`` executor backends at 1/2/4 workers), a *recovery*
grid (the replicated cell as eight chunks on a two-worker self-healing
subprocess fleet under scripted chaos schedules that SIGKILL 0/1/3 workers
mid-sweep -- wall time, respawn counts and float parity against serial), a
kernel grid (the pure-Python event loop vs the batched NumPy vector kernel,
single-run and lane-batched, at the two largest E9 cells), a kernel *family*
grid (the families the PR-7 and PR-9 whitelist widenings admitted: the echo
algorithm, uniform delays, the randomized forge_flood and ``random_*``
attacks, drifting ``random``-mode clocks and zero-min ``min`` delays, event
loop vs the vector engines), a *telemetry* cell (the largest lane-batched
kernel cell run untraced and then with span tracing and the metrics registry
fully enabled -- float parity gated unconditionally, the traced wall clock
held within a few percent of untraced) and every reproduction experiment end
to end --
recording, via the experiments' result observer, which fraction of the E1-E15
scenario cells is statically vector-eligible under the current whitelist vs
the PR-6 and PR-7 ones.  CI's perf-smoke job runs it with ``--quick --gate``
and uploads the JSON as an artifact, so the bench trajectory is versioned
alongside the code.

Usage::

    python scripts/bench.py [--quick] [--output BENCH_PR10.json]
                            [--repeats N] [--gate]

Timings always run against a cold result cache (caching is disabled for the
measured runs), so they measure simulation + observation, not cache reads.
The horizon/shard/executor grids pin ``kernel="event"`` so they keep
measuring the event-loop paths they always measured; the kernel grid is
where the engines race.  Each grid cell reports the best of ``--repeats``
runs; the parity blocks assert the acceptance contracts -- adaptive metrics
values (including the window-rate extremes) are float-for-float equal to the
full-trace pipeline, sharded runs are float-for-float equal to the unsharded
fold, the subprocess wire backend is float-for-float equal to the pool
backend (and to the serial path) at every worker count, and the vector
kernel is float-for-float equal to the event loop (gated unconditionally,
with a speedup floor on multi-core runners).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.experiments import EXPERIMENTS
from repro.experiments.common import (
    adversarial_scenario,
    default_params,
    results_exactly_equal,
    set_observer,
)
from repro.runner.config import configure as configure_runner
from repro.runner.core import SweepRunner
from repro.runner.exec import ChaosController, ChaosSchedule, SubprocessWorkerExecutor
from repro.sim.kernel import kernel_ineligibility
from repro.workloads.scenarios import _measure_streamed, _resolve_check, build_cluster, run_scenario

#: Adaptive-vs-baseline tolerance for the CI gate.  The adaptive and static
#: paths do nearly identical work per event (the static poll is an O(1)
#: incremental read since PR 3), so sub-second cells are dominated by
#: scheduler noise on shared CI runners; the timing gate therefore applies
#: only to the largest grid cell (most signal) and allows this much noise.
#: Value parity, by contrast, is deterministic and gated on every cell.
GATE_TOLERANCE = 1.25

#: The shard-scaling contract: 4 shards of the largest replicated cell must
#: beat the unsharded fold by this factor.  Only gated when the runner has at
#: least :data:`SHARD_GATE_MIN_CORES` cores (a 1-core box cannot speed up by
#: adding processes), and softened by :data:`GATE_TOLERANCE` against shared
#: CI runner noise; value parity is gated unconditionally.
SHARD_SPEEDUP_TARGET = 1.5
SHARD_GATE_MIN_CORES = 4

#: The kernel contract: on the largest E9 cell the vector kernel must beat
#: the event loop by this factor.  Value parity (vector == event,
#: float-for-float, and the vector kernel actually serving the cell rather
#: than falling back) is gated unconditionally; the speedup floor -- like the
#: shard gate -- only applies on runners with :data:`KERNEL_GATE_MIN_CORES`
#: cores and is softened by :data:`GATE_TOLERANCE` against CI noise.
KERNEL_SPEEDUP_TARGET = 5.0
KERNEL_GATE_MIN_CORES = 4

#: The recovery contract: with respawn on, a sweep that loses workers to a
#: scripted kill schedule must finish within this factor of the no-churn
#: wall time (softened by :data:`GATE_TOLERANCE` against CI noise).  Value
#: parity against the serial fold is gated unconditionally -- churn may cost
#: time but can never move a float.
RECOVERY_SLOWDOWN_LIMIT = 1.5

#: The telemetry contract: with span tracing and the metrics registry fully
#: enabled, the largest lane-batched kernel cell must finish within this
#: factor of its untraced wall time (softened by :data:`GATE_TOLERANCE`
#: against CI noise).  Value parity -- traced == untraced, float-for-float --
#: is gated unconditionally: telemetry observes, it never participates.
TELEMETRY_OVERHEAD_LIMIT = 1.05

#: Aggressive fleet timings for the recovery grid's executors: losses are
#: detected within ~2s and replacements arrive within ~0.1s, so the churned
#: cells measure recovery, not default production backoffs.
_RECOVERY_FLEET = dict(
    heartbeat_interval=0.1,
    heartbeat_timeout=2.0,
    respawn_backoff=0.05,
    respawn_backoff_cap=0.5,
    monitor_period=0.05,
)


def _pr6_statically_eligible(scenario, trace_level: str) -> bool:
    """Whether the PR-6 whitelist (pre-widening) admitted this scenario.

    PR 7 widened exactly three axes -- algorithm (``echo``), delay mode
    (``uniform``) and attack (``forge_flood``) -- so the old whitelist is the
    current one minus those admissions.
    """
    if kernel_ineligibility(scenario, trace_level) is not None:
        return False
    return (
        scenario.algorithm == "auth"
        and scenario.delay_mode != "uniform"
        and scenario.attack != "forge_flood"
        and _pr7_statically_eligible(scenario, trace_level)
    )


def _pr7_statically_eligible(scenario, trace_level: str) -> bool:
    """Whether the PR-7 whitelist (pre-PR-9 widening) admitted this scenario.

    PR 9 widened exactly three axes -- the ``random_*`` attack strategies,
    the drifting ``random`` clock mode and the ``min`` delay mode -- so the
    PR-7 whitelist is the current one minus those admissions.
    """
    if kernel_ineligibility(scenario, trace_level) is not None:
        return False
    return (
        scenario.attack not in ("random_silence", "random_two_faced", "random_laggard")
        and scenario.clock_mode != "random"
        and scenario.delay_mode != "min"
    )


def time_experiments(quick: bool) -> tuple[dict, dict]:
    """Time every experiment and record the E-grid vector-eligibility coverage.

    The passive result observer sees every scenario an experiment evaluates;
    each is classified against the current static whitelist and the PR-6 and
    PR-7 ones, so the summary carries a coverage stat the gate can hold
    strictly above the pre-widening (PR-7) baseline.
    """
    timings = {}
    observed: list = []

    def observe(result) -> None:
        observed.append((result.scenario, getattr(result, "trace_level", "full")))

    set_observer(observe)
    try:
        for exp_id, experiment in EXPERIMENTS.items():
            start = time.perf_counter()
            experiment.run(quick=quick)
            timings[exp_id] = {
                "claim": experiment.claim,
                "wall_time_s": round(time.perf_counter() - start, 4),
            }
    finally:
        set_observer(None)
    eligible = sum(
        1 for scenario, level in observed if kernel_ineligibility(scenario, level) is None
    )
    pr6_eligible = sum(
        1 for scenario, level in observed if _pr6_statically_eligible(scenario, level)
    )
    pr7_eligible = sum(
        1 for scenario, level in observed if _pr7_statically_eligible(scenario, level)
    )
    total = len(observed)
    coverage = {
        "total_cells": total,
        "eligible_cells": eligible,
        "pr6_eligible_cells": pr6_eligible,
        "pr7_eligible_cells": pr7_eligible,
        "coverage": round(eligible / total, 4) if total else 0.0,
        "pr6_coverage": round(pr6_eligible / total, 4) if total else 0.0,
        "pr7_coverage": round(pr7_eligible / total, 4) if total else 0.0,
    }
    return timings, coverage


def _best_of(repeats: int, fn):
    best_time = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best_time = min(best_time, time.perf_counter() - start)
    return best_time, result


def _run_pr2_style(scenario):
    """The PR-2 static-horizon path: poll an O(n) round scan after every event.

    Replicates (against today's recorder) exactly what ``run_until_round``
    cost before the incremental round tracking: a Python stop-condition
    closure that rescans every process's progress after each event.  This is
    the recorded baseline the adaptive horizon is measured against.
    """
    handles = build_cluster(scenario, trace_level="metrics")
    sim = handles.sim
    procs = sim.recorder._procs  # noqa: SLF001 - deliberate replica of the old scan
    target = scenario.rounds

    def pr2_poll(_sim) -> bool:
        worst = None
        for proc in procs.values():
            if proc.faulty:
                continue
            value = proc.max_round if proc.resync_count else 0
            if worst is None or value < worst:
                worst = value
        return (worst if worst is not None else 0) >= target

    sim.stop_condition = pr2_poll
    summary = sim.run_until(scenario.horizon())
    check = _resolve_check(scenario, None)
    return _measure_streamed(scenario, summary, check, stopped_early=sim.stopped_early)


def time_horizon_grid(quick: bool, repeats: int) -> dict:
    """Full vs metrics-static vs metrics-adaptive on an E9-style grid (to 6x n)."""
    rounds = 5 if quick else 12
    sizes = [7, 28] if quick else [7, 14, 28, 42]
    grid = {}
    for n in sizes:
        scenario = dataclasses.replace(
            adversarial_scenario(
                default_params(n, authenticated=True),
                "auth",
                attack="skew_max",
                rounds=rounds,
                seed=100 + n,
            ),
            kernel="event",  # this grid measures the event-loop paths
        )
        modes = {
            "full": lambda s=scenario: run_scenario(s, trace_level="full"),
            "metrics_pr2_poll": lambda s=scenario: _run_pr2_style(s),
            "metrics_static": lambda s=dataclasses.replace(scenario, adaptive_horizon=False): run_scenario(
                s, trace_level="metrics"
            ),
            "metrics_adaptive": lambda s=dataclasses.replace(scenario, adaptive_horizon=True): run_scenario(
                s, trace_level="metrics"
            ),
        }
        entry = {}
        results = {}
        for mode, runner in modes.items():
            wall, result = _best_of(repeats, runner)
            results[mode] = result
            entry[mode] = {
                "wall_time_s": round(wall, 4),
                "precision": result.precision,
                "completed_round": result.completed_round,
                "effective_horizon": result.effective_horizon,
                "total_messages": result.total_messages,
            }
        full, adaptive, pr2 = results["full"], results["metrics_adaptive"], results["metrics_pr2_poll"]
        full_acc, fast_acc = full.accuracy, adaptive.accuracy
        entry["parity"] = {
            "precision_exact": adaptive.precision == full.precision,
            "effective_horizon_exact": adaptive.effective_horizon == full.effective_horizon,
            "window_rates_exact": (
                full_acc is not None
                and fast_acc is not None
                and fast_acc.slowest_window_rate == full_acc.slowest_window_rate
                and fast_acc.fastest_window_rate == full_acc.fastest_window_rate
            ),
            "pr2_poll_exact": (
                adaptive.precision == pr2.precision
                and adaptive.effective_horizon == pr2.effective_horizon
                and adaptive.completed_round == pr2.completed_round
            ),
        }
        adaptive_wall = max(entry["metrics_adaptive"]["wall_time_s"], 1e-9)
        entry["speedup_pr2_over_adaptive"] = round(
            entry["metrics_pr2_poll"]["wall_time_s"] / adaptive_wall, 3
        )
        entry["speedup_static_over_adaptive"] = round(
            entry["metrics_static"]["wall_time_s"] / adaptive_wall, 3
        )
        entry["speedup_full_over_adaptive"] = round(entry["full"]["wall_time_s"] / adaptive_wall, 3)
        grid[f"n={n}"] = entry
    return {"rounds": rounds, "repeats": repeats, "grid": grid}


def time_shard_grid(quick: bool, repeats: int) -> dict:
    """Sharded vs unsharded wall clock and value parity on the largest cell.

    The cell is the horizon grid's largest system replicated 8 times; shard
    plans 1 (the unsharded in-process fold), 2 and 4 run the same
    replications through the sharded backend's worker pool.  Pools are
    persistent across the ``repeats`` (best-of excludes spawn cost), mirroring
    how experiment suites reuse one pool across many sweeps.
    """
    n = 28 if quick else 42
    rounds = 5 if quick else 12
    replications = 8
    base = dataclasses.replace(
        adversarial_scenario(
            default_params(n, authenticated=True),
            "auth",
            attack="skew_max",
            rounds=rounds,
            seed=100 + n,
        ),
        kernel="event",  # this grid measures event-loop shard scaling
    )
    grid = {}
    results = {}
    for shards in (1, 2, 4):
        scenario = dataclasses.replace(base, replications=replications, shards=shards, name="")
        if shards == 1:
            wall, result = _best_of(repeats, lambda s=scenario: run_scenario(s, trace_level="metrics"))
        else:
            with SweepRunner(jobs=shards) as runner:
                wall, result = _best_of(
                    repeats, lambda s=scenario: runner.run(s, trace_level="metrics")
                )
        results[shards] = result
        grid[f"shards={shards}"] = {
            "wall_time_s": round(wall, 4),
            "shard_count": result.shard_count,
            "precision": result.precision,
            "completed_round": result.completed_round,
            "effective_horizon": result.effective_horizon,
            "total_messages": result.total_messages,
        }
    reference = results[1]
    for shards, result in results.items():
        ref_acc, acc = reference.accuracy, result.accuracy
        grid[f"shards={shards}"]["parity"] = {
            "values_exact": (
                result.precision == reference.precision
                and result.precision_overall == reference.precision_overall
                and result.acceptance_spread == reference.acceptance_spread
                and result.completed_round == reference.completed_round
                and result.total_messages == reference.total_messages
                and result.effective_horizon == reference.effective_horizon
            ),
            "window_rates_exact": (
                ref_acc is not None
                and acc is not None
                and acc.slowest_window_rate == ref_acc.slowest_window_rate
                and acc.fastest_window_rate == ref_acc.fastest_window_rate
            ),
        }
    unsharded_wall = grid["shards=1"]["wall_time_s"]
    for shards in (2, 4):
        wall = max(grid[f"shards={shards}"]["wall_time_s"], 1e-9)
        grid[f"shards={shards}"]["speedup_vs_unsharded"] = round(unsharded_wall / wall, 3)
    return {
        "n": n,
        "rounds": rounds,
        "replications": replications,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "grid": grid,
    }


def _result_cell(wall: float, result) -> dict:
    return {
        "wall_time_s": round(wall, 4),
        "shard_count": result.shard_count,
        "precision": result.precision,
        "completed_round": result.completed_round,
        "effective_horizon": result.effective_horizon,
        "total_messages": result.total_messages,
    }


def time_executor_grid(quick: bool, repeats: int) -> dict:
    """Backend scaling: pool vs subprocess at 1/2/4 workers, value parity gated.

    The cell is the shard grid's replicated largest system; each backend runs
    it with the shard plan pinned to its worker count, so the same work
    distributes across however many workers the backend has.  The subprocess
    rows exercise the full remote wire protocol (framing, heartbeats,
    fault-tolerant scheduling) on localhost; the contract is that every
    backend row is float-for-float identical to the serial fold -- wall
    clock is reported, not gated, because the wire adds real (bounded)
    overhead that CI runners measure too noisily.
    """
    n = 28 if quick else 42
    rounds = 5 if quick else 12
    replications = 8
    base = dataclasses.replace(
        adversarial_scenario(
            default_params(n, authenticated=True),
            "auth",
            attack="skew_max",
            rounds=rounds,
            seed=100 + n,
        ),
        kernel="event",  # this grid measures event-loop backend scaling
    )
    serial = run_scenario(
        dataclasses.replace(base, replications=replications, shards=1, name=""), trace_level="metrics"
    )
    grid: dict = {}
    results: dict = {}
    for backend in ("pool", "subprocess"):
        for workers in (1, 2, 4):
            scenario = dataclasses.replace(base, replications=replications, shards=workers, name="")
            with SweepRunner(jobs=workers, cache=None, executor=backend) as runner:
                wall, result = _best_of(repeats, lambda s=scenario, r=runner: r.run(s, trace_level="metrics"))
            label = f"{backend}-w{workers}"
            results[label] = result
            grid[label] = _result_cell(wall, result)
            grid[label]["parity"] = {"values_exact_vs_serial": results_exactly_equal(result, serial)}
    for workers in (1, 2, 4):
        grid[f"subprocess-w{workers}"]["parity"]["values_exact_vs_pool"] = results_exactly_equal(
            results[f"subprocess-w{workers}"], results[f"pool-w{workers}"]
        )
        pool_wall = max(grid[f"pool-w{workers}"]["wall_time_s"], 1e-9)
        grid[f"subprocess-w{workers}"]["overhead_vs_pool"] = round(
            grid[f"subprocess-w{workers}"]["wall_time_s"] / pool_wall, 3
        )
    return {
        "n": n,
        "rounds": rounds,
        "replications": replications,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "grid": grid,
    }


def time_recovery_grid(quick: bool, repeats: int) -> dict:
    """Self-healing recovery: the same sweep under 0/1/3 injected worker kills.

    Every cell runs the replicated largest system as eight shard chunks on a
    two-worker subprocess fleet with aggressive recovery timings; the chaos
    schedule SIGKILLs a live worker after the 1st (and 3rd, and 5th) completed
    chunk.  Parity against the serial fold is gated unconditionally -- churn
    can cost wall clock but can never move a float -- and with respawn on,
    the churned cells must stay within :data:`RECOVERY_SLOWDOWN_LIMIT` of the
    no-churn cell (softened by the usual noise tolerance): recovery is
    measured in requeued chunks and respawn backoff, not in lost sweeps.
    """
    n = 24 if quick else 36
    rounds = 6 if quick else 10
    shards = 8
    base = dataclasses.replace(
        adversarial_scenario(
            default_params(n, authenticated=True),
            "auth",
            attack="skew_max",
            rounds=rounds,
            seed=800 + n,
        ),
        kernel="event",  # the recovery grid measures the event-loop wire path
    )
    scenario = dataclasses.replace(base, replications=shards, shards=shards, name="")
    serial = run_scenario(
        dataclasses.replace(base, replications=shards, shards=1, name=""), trace_level="metrics"
    )
    grid: dict = {}
    for kills in (0, 1, 3):
        schedule_spec = ",".join(f"kill@{1 + 2 * index}" for index in range(kills))
        best_wall = None
        best_result = None
        best_stats: dict = {}
        for _ in range(max(1, repeats)):
            # Fresh executor per repeat: each chaos schedule murders workers
            # once, so reusing the fleet would give later repeats a head start.
            executor = SubprocessWorkerExecutor(2, **_RECOVERY_FLEET)
            with SweepRunner(jobs=2, cache=None, executor=executor, chunk_size=1) as runner:
                start = time.perf_counter()
                if kills:
                    schedule = ChaosSchedule.parse(schedule_spec, seed=42 + kills)
                    with ChaosController(executor, schedule):
                        result = runner.run(scenario, trace_level="metrics")
                else:
                    result = runner.run(scenario, trace_level="metrics")
                wall = time.perf_counter() - start
                stats = runner.executor_stats()
            if best_wall is None or wall < best_wall:
                best_wall, best_result, best_stats = wall, result, stats
        label = f"kills={kills}"
        grid[label] = _result_cell(best_wall, best_result)
        grid[label]["fleet"] = {
            key: best_stats[key] for key in ("workers_lost", "respawns", "retries", "joins")
        }
        grid[label]["parity"] = {"values_exact_vs_serial": results_exactly_equal(best_result, serial)}
    no_churn = max(grid["kills=0"]["wall_time_s"], 1e-9)
    for kills in (1, 3):
        grid[f"kills={kills}"]["slowdown_vs_no_churn"] = round(
            grid[f"kills={kills}"]["wall_time_s"] / no_churn, 3
        )
    return {
        "n": n,
        "rounds": rounds,
        "shards": shards,
        "workers": 2,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "grid": grid,
    }


def time_kernel_grid(quick: bool, repeats: int) -> dict:
    """Event loop vs vector kernel at the two largest E9 cells, parity gated.

    Single-run rows race the engines head to head; the ``lanes`` rows run the
    cell replicated 8 times -- the event loop serially, the vector kernel
    lane-batched (all replications stepped in lockstep as array lanes inside
    one shard).  ``vector_served`` asserts the vector rows were actually
    evaluated by the vector kernel (no silent fallback): a fallback would
    still be value-identical, which is exactly why it must be detected
    explicitly rather than through the numbers.
    """
    from repro.sim.vectorized import run_lanes

    rounds = 5 if quick else 12
    sizes = [7, 28] if quick else [28, 42]
    replications = 8
    grid: dict = {}
    for n in sizes:
        base = adversarial_scenario(
            default_params(n, authenticated=True),
            "auth",
            attack="skew_max",
            rounds=rounds,
            seed=100 + n,
        )
        single = {
            "event": dataclasses.replace(base, kernel="event"),
            "vector": dataclasses.replace(base, kernel="vector"),
        }
        entry: dict = {}
        results: dict = {}
        for mode, scenario in single.items():
            wall, result = _best_of(repeats, lambda s=scenario: run_scenario(s, trace_level="metrics"))
            results[mode] = result
            entry[mode] = _result_cell(wall, result)
        served = run_lanes([single["vector"]])[0].fallback is None
        lanes = {
            "event_lanes": dataclasses.replace(
                base, kernel="event", replications=replications, shards=1, name=""
            ),
            "vector_lanes": dataclasses.replace(
                base, kernel="vector", replications=replications, shards=1, name=""
            ),
        }
        for mode, scenario in lanes.items():
            wall, result = _best_of(repeats, lambda s=scenario: run_scenario(s, trace_level="metrics"))
            results[mode] = result
            entry[mode] = _result_cell(wall, result)
        entry["parity"] = {
            "vector_exact": results_exactly_equal(results["vector"], results["event"]),
            "lanes_exact": results_exactly_equal(results["vector_lanes"], results["event_lanes"]),
            "vector_served": served,
        }
        vector_wall = max(entry["vector"]["wall_time_s"], 1e-9)
        lanes_wall = max(entry["vector_lanes"]["wall_time_s"], 1e-9)
        entry["speedup_event_over_vector"] = round(entry["event"]["wall_time_s"] / vector_wall, 3)
        entry["speedup_lanes"] = round(entry["event_lanes"]["wall_time_s"] / lanes_wall, 3)
        grid[f"n={n}"] = entry
    return {
        "rounds": rounds,
        "replications": replications,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "grid": grid,
    }


def time_telemetry_grid(quick: bool, repeats: int) -> dict:
    """Traced vs untraced on the largest lane-batched kernel cell.

    The telemetry layer must be free to leave on: the same scenario is timed
    with ``repro.obs`` fully off and then with span tracing plus the metrics
    registry enabled, and the two results must be float-identical --
    telemetry reads no simulated clock and consumes no seeded RNG stream, so
    any drift is a bug, not noise.  The wall-clock ratio feeds
    :func:`check_telemetry_gate`.
    """
    from repro import obs

    n = 28 if quick else 42
    rounds = 5 if quick else 12
    replications = 8
    scenario = dataclasses.replace(
        adversarial_scenario(
            default_params(n, authenticated=True),
            "auth",
            attack="skew_max",
            rounds=rounds,
            seed=100 + n,
        ),
        kernel="vector",
        replications=replications,
        shards=1,
        name="",
    )
    untraced_wall, untraced = _best_of(repeats, lambda: run_scenario(scenario, trace_level="metrics"))
    span_counts: list = []

    def traced_run():
        obs.enable()
        try:
            result = run_scenario(scenario, trace_level="metrics")
            span_counts.append(len(obs.tracer().all_spans()))
            return result
        finally:
            obs.disable()

    traced_wall, traced = _best_of(repeats, traced_run)
    entry = {
        "untraced": _result_cell(untraced_wall, untraced),
        "traced": _result_cell(traced_wall, traced),
        "spans": max(span_counts),
        "parity": {"traced_exact": results_exactly_equal(traced, untraced)},
        "overhead_traced_over_untraced": round(traced_wall / max(untraced_wall, 1e-9), 3),
    }
    return {
        "rounds": rounds,
        "replications": replications,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "grid": {f"n={n}": entry},
    }


#: The families the PR-7 and PR-9 widenings admitted, each raced event vs
#: vector: label -> (algorithm, attack, delay_mode, clock_mode).
KERNEL_FAMILY_CELLS = {
    "echo": ("echo", "skew_max", "targeted", "extreme"),
    "uniform": ("auth", "skew_max", "uniform", "extreme"),
    "forge_flood": ("auth", "forge_flood", "targeted", "extreme"),
    "echo-uniform-flood": ("echo", "forge_flood", "uniform", "extreme"),
    "random-silence": ("auth", "random_silence", "targeted", "extreme"),
    "random-two-faced": ("auth", "random_two_faced", "targeted", "extreme"),
    "drifting": ("auth", "two_faced", "targeted", "random"),
    "min-delay": ("auth", "skew_max", "min", "extreme"),
    "laggard-drift-min": ("auth", "random_laggard", "min", "random"),
}


def time_kernel_family_grid(quick: bool, repeats: int) -> dict:
    """Event loop vs the vector engines on the PR-7/PR-9 widened families.

    One cell per newly eligible family -- PR 7's echo broadcast, uniform
    delays and randomized forge_flood, plus PR 9's ``random_*`` attack
    strategies, drifting (``random``-mode) clocks and zero-min ``min``
    delays, including a cell stacking all three PR-9 axes -- at two system
    sizes.  ``vector_served`` reads the result's kernel provenance, so a
    silent fallback -- value-identical by design -- still fails the gate.
    Parity is gated unconditionally; the x5 speedup floor applies to each
    family's largest cell on multi-core runners.  The quick sizes top out
    at ``n = 20`` (not 16 like the kernel grid): the drifting and stacked
    PR-9 cells pay a per-lane Python cost reconstructing clock
    trajectories, so the smallest cells sit near the gate floor and the
    largest needs the event loop's O(n^2) growth for a stable margin.
    """
    rounds = 5 if quick else 10
    sizes = [10, 20] if quick else [16, 28]
    grid: dict = {}
    for label, (algorithm, attack, delay_mode, clock_mode) in KERNEL_FAMILY_CELLS.items():
        for n in sizes:
            base = dataclasses.replace(
                adversarial_scenario(
                    default_params(n, authenticated=(algorithm == "auth")),
                    algorithm,
                    attack=attack,
                    rounds=rounds,
                    seed=100 + n,
                ),
                delay_mode=delay_mode,
                clock_mode=clock_mode,
            )
            entry: dict = {}
            results: dict = {}
            for mode in ("event", "vector"):
                scenario = dataclasses.replace(base, kernel=mode)
                wall, result = _best_of(
                    repeats, lambda s=scenario: run_scenario(s, trace_level="metrics")
                )
                results[mode] = result
                entry[mode] = _result_cell(wall, result)
            provenance = results["vector"].kernel_provenance
            entry["parity"] = {
                "vector_exact": results_exactly_equal(results["vector"], results["event"]),
                "vector_served": provenance is not None and provenance.vector_lanes == 1,
            }
            vector_wall = max(entry["vector"]["wall_time_s"], 1e-9)
            entry["speedup_event_over_vector"] = round(
                entry["event"]["wall_time_s"] / vector_wall, 3
            )
            grid[f"{label}/n={n}"] = entry
    return {
        "rounds": rounds,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "grid": grid,
    }


def check_kernel_family_gate(family_grid: dict) -> list[str]:
    """Parity and actually-served on every family cell; x5 on the largest."""
    failures = []
    for label, entry in family_grid["grid"].items():
        for name, ok in entry["parity"].items():
            if not ok:
                failures.append(f"kernel family {label}: parity check {name} failed")
    cores = family_grid.get("cpu_count") or 1
    if cores >= KERNEL_GATE_MIN_CORES:
        required = KERNEL_SPEEDUP_TARGET / GATE_TOLERANCE
        for family in KERNEL_FAMILY_CELLS:
            labels = [label for label in family_grid["grid"] if label.startswith(f"{family}/")]
            largest = max(labels, key=lambda label: int(label.split("=")[1]))
            speedup = family_grid["grid"][largest]["speedup_event_over_vector"]
            if speedup < required:
                failures.append(
                    f"kernel family {largest}: speedup x{speedup} below x{required:.2f} "
                    f"(target x{KERNEL_SPEEDUP_TARGET}, tolerance x{GATE_TOLERANCE}, {cores} cores)"
                )
    return failures


def check_coverage_gate(coverage: dict) -> list[str]:
    """The widened whitelist must cover strictly more E-grid cells than PR 7."""
    if coverage["eligible_cells"] <= coverage["pr7_eligible_cells"]:
        return [
            f"kernel coverage: {coverage['eligible_cells']}/{coverage['total_cells']} "
            f"eligible cells is not strictly above the PR-7 whitelist's "
            f"{coverage['pr7_eligible_cells']}"
        ]
    return []


def check_kernel_gate(kernel_grid: dict) -> list[str]:
    """Vector parity (and actually-served) unconditionally; speedup on big boxes."""
    failures = []
    for label, entry in kernel_grid["grid"].items():
        for name, ok in entry["parity"].items():
            if not ok:
                failures.append(f"kernel {label}: parity check {name} failed")
    cores = kernel_grid.get("cpu_count") or 1
    if cores >= KERNEL_GATE_MIN_CORES:
        labels = list(kernel_grid["grid"])
        largest = max(labels, key=lambda label: int(label.split("=")[1]))
        speedup = kernel_grid["grid"][largest]["speedup_event_over_vector"]
        required = KERNEL_SPEEDUP_TARGET / GATE_TOLERANCE
        if speedup < required:
            failures.append(
                f"kernel {largest}: speedup x{speedup} below x{required:.2f} "
                f"(target x{KERNEL_SPEEDUP_TARGET}, tolerance x{GATE_TOLERANCE}, {cores} cores)"
            )
    return failures


def check_telemetry_gate(telemetry_grid: dict) -> list[str]:
    """Traced runs must equal untraced float-exact and stay within the overhead limit.

    Parity and span presence are gated unconditionally; the timing bound is
    :data:`TELEMETRY_OVERHEAD_LIMIT`, softened by :data:`GATE_TOLERANCE`.
    """
    failures = []
    for label, entry in telemetry_grid["grid"].items():
        for name, ok in entry["parity"].items():
            if not ok:
                failures.append(f"telemetry {label}: parity check {name} failed")
        if not entry["spans"]:
            failures.append(f"telemetry {label}: traced run produced no spans")
        limit = TELEMETRY_OVERHEAD_LIMIT * GATE_TOLERANCE
        overhead = entry["overhead_traced_over_untraced"]
        if overhead > limit:
            failures.append(
                f"telemetry {label}: traced x{overhead} over untraced exceeds x{limit:.3f} "
                f"(limit x{TELEMETRY_OVERHEAD_LIMIT}, tolerance x{GATE_TOLERANCE})"
            )
    return failures


def check_executor_gate(executor_grid: dict) -> list[str]:
    """Backend value parity is deterministic and gated unconditionally."""
    failures = []
    for label, entry in executor_grid["grid"].items():
        for name, ok in entry["parity"].items():
            if not ok:
                failures.append(f"{label}: parity check {name} failed")
    return failures


def check_recovery_gate(recovery_grid: dict) -> list[str]:
    """Churned sweeps must equal serial float-for-float and recover by respawn.

    Value parity is gated unconditionally.  Every killed cell must report at
    least one respawn (recovery must replace workers, not just shrink), and
    its wall time must stay within :data:`RECOVERY_SLOWDOWN_LIMIT` of the
    no-churn cell, softened by :data:`GATE_TOLERANCE`.
    """
    failures = []
    for label, entry in recovery_grid["grid"].items():
        for name, ok in entry["parity"].items():
            if not ok:
                failures.append(f"recovery {label}: parity check {name} failed")
        kills = int(label.split("=")[1])
        if kills:
            if entry["fleet"]["respawns"] < 1:
                failures.append(
                    f"recovery {label}: expected at least one respawn, "
                    f"saw {entry['fleet']['respawns']}"
                )
            slowdown = entry["slowdown_vs_no_churn"]
            limit = RECOVERY_SLOWDOWN_LIMIT * GATE_TOLERANCE
            if slowdown > limit:
                failures.append(
                    f"recovery {label}: slowdown x{slowdown} above x{limit:.3f} "
                    f"(limit x{RECOVERY_SLOWDOWN_LIMIT}, tolerance x{GATE_TOLERANCE})"
                )
    return failures


def check_gate(horizon_grid: dict) -> list[str]:
    """Adaptive-horizon metrics runs must be at least as fast as static ones."""
    failures = []
    labels = list(horizon_grid["grid"])
    # Timing is gated on the largest cell only; tiny cells are pure noise.
    timing_label = max(labels, key=lambda label: int(label.split("=")[1]))
    for label, entry in horizon_grid["grid"].items():
        if label == timing_label:
            adaptive = entry["metrics_adaptive"]["wall_time_s"]
            for baseline in ("metrics_static", "metrics_pr2_poll"):
                wall = entry[baseline]["wall_time_s"]
                if adaptive > wall * GATE_TOLERANCE:
                    failures.append(
                        f"{label}: adaptive {adaptive:.4f}s slower than {baseline} {wall:.4f}s "
                        f"(tolerance x{GATE_TOLERANCE})"
                    )
        for name, ok in entry["parity"].items():
            if not ok:
                failures.append(f"{label}: parity check {name} failed")
    return failures


def check_shard_gate(shard_grid: dict) -> list[str]:
    """Sharded runs must equal the unsharded fold; 4 shards must be faster.

    Value parity is gated unconditionally (it is deterministic).  The
    speedup gate only applies on runners with enough cores for sharding to
    pay, and allows the usual noise tolerance.
    """
    failures = []
    for label, entry in shard_grid["grid"].items():
        for name, ok in entry["parity"].items():
            if not ok:
                failures.append(f"{label}: parity check {name} failed")
    cores = shard_grid.get("cpu_count") or 1
    if cores >= SHARD_GATE_MIN_CORES:
        speedup = shard_grid["grid"]["shards=4"]["speedup_vs_unsharded"]
        required = SHARD_SPEEDUP_TARGET / GATE_TOLERANCE
        if speedup < required:
            failures.append(
                f"shards=4: speedup x{speedup} below x{required:.2f} "
                f"(target x{SHARD_SPEEDUP_TARGET}, tolerance x{GATE_TOLERANCE}, {cores} cores)"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small grids (CI smoke)")
    parser.add_argument("--output", default="BENCH_PR10.json", help="output path")
    parser.add_argument("--repeats", type=int, default=3, help="runs per grid cell (best-of)")
    parser.add_argument(
        "--gate",
        "--fail-if-adaptive-slower",
        action="store_true",
        dest="gate",
        help="exit non-zero unless adaptive-horizon metrics runs are at least as fast as "
        "static-horizon runs, sharded runs are value-identical to the unsharded fold "
        "(and, on multi-core runners, at least 1.5x faster at 4 shards), the subprocess "
        "executor backend is value-identical to the pool backend and the serial path at "
        "every worker count, sweeps under scripted worker kills recover by respawn, stay "
        "value-identical to serial and finish within 1.5x of the no-churn wall time, "
        "the vector kernel is value-identical to the event loop and "
        "actually serves the kernel grid and the widened family grid (and, on multi-core "
        "runners, at least 5x faster on the largest cells), the E-grid vector-eligibility "
        "coverage is strictly above the PR-7 whitelist's, telemetry-enabled runs are "
        "value-identical to untraced runs and within the telemetry overhead limit, and "
        "every value-parity check is float-exact",
    )
    args = parser.parse_args()

    # Cold-cache, serial timings: measure the work, not the cache or the pool.
    configure_runner(jobs=1, use_cache=False)

    horizon_grid = time_horizon_grid(args.quick, args.repeats)
    shard_grid = time_shard_grid(args.quick, args.repeats)
    executor_grid = time_executor_grid(args.quick, args.repeats)
    recovery_grid = time_recovery_grid(args.quick, args.repeats)
    kernel_grid = time_kernel_grid(args.quick, args.repeats)
    kernel_family_grid = time_kernel_family_grid(args.quick, args.repeats)
    telemetry_grid = time_telemetry_grid(args.quick, args.repeats)
    experiments, kernel_coverage = time_experiments(args.quick)
    summary = {
        "schema": "bench/10",
        "quick": args.quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "experiments": experiments,
        "kernel_coverage": kernel_coverage,
        "horizon_grid": horizon_grid,
        "shard_grid": shard_grid,
        "executor_grid": executor_grid,
        "recovery_grid": recovery_grid,
        "kernel_grid": kernel_grid,
        "kernel_family_grid": kernel_family_grid,
        "telemetry_grid": telemetry_grid,
    }
    output = Path(args.output)
    output.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    total = sum(entry["wall_time_s"] for entry in summary["experiments"].values())
    print(f"wrote {output} ({len(summary['experiments'])} experiments, {total:.2f}s total)")
    for label, entry in horizon_grid["grid"].items():
        print(
            f"  {label}: full {entry['full']['wall_time_s']}s, "
            f"pr2-poll {entry['metrics_pr2_poll']['wall_time_s']}s, "
            f"static {entry['metrics_static']['wall_time_s']}s, "
            f"adaptive {entry['metrics_adaptive']['wall_time_s']}s "
            f"(x{entry['speedup_pr2_over_adaptive']} vs PR-2 poll), "
            f"parity {all(entry['parity'].values())}"
        )
    for label, entry in shard_grid["grid"].items():
        speedup = entry.get("speedup_vs_unsharded")
        print(
            f"  {label}: {entry['wall_time_s']}s"
            + (f" (x{speedup} vs unsharded)" if speedup is not None else " (reference)")
            + f", parity {all(entry['parity'].values())}"
        )
    for label, entry in executor_grid["grid"].items():
        overhead = entry.get("overhead_vs_pool")
        print(
            f"  {label}: {entry['wall_time_s']}s"
            + (f" (x{overhead} vs pool)" if overhead is not None else "")
            + f", parity {all(entry['parity'].values())}"
        )
    for label, entry in recovery_grid["grid"].items():
        slowdown = entry.get("slowdown_vs_no_churn")
        print(
            f"  recovery {label}: {entry['wall_time_s']}s"
            + (f" (x{slowdown} vs no churn)" if slowdown is not None else " (no churn)")
            + f", {entry['fleet']['respawns']} respawns, parity {all(entry['parity'].values())}"
        )
    for label, entry in kernel_grid["grid"].items():
        print(
            f"  kernel {label}: event {entry['event']['wall_time_s']}s, "
            f"vector {entry['vector']['wall_time_s']}s "
            f"(x{entry['speedup_event_over_vector']}), "
            f"lanes x{entry['speedup_lanes']}, "
            f"parity {all(entry['parity'].values())}"
        )
    for label, entry in kernel_family_grid["grid"].items():
        print(
            f"  kernel family {label}: event {entry['event']['wall_time_s']}s, "
            f"vector {entry['vector']['wall_time_s']}s "
            f"(x{entry['speedup_event_over_vector']}), "
            f"parity {all(entry['parity'].values())}"
        )
    for label, entry in telemetry_grid["grid"].items():
        print(
            f"  telemetry {label}: untraced {entry['untraced']['wall_time_s']}s, "
            f"traced {entry['traced']['wall_time_s']}s "
            f"(x{entry['overhead_traced_over_untraced']}, {entry['spans']} spans), "
            f"parity {all(entry['parity'].values())}"
        )
    print(
        f"  kernel coverage: {kernel_coverage['eligible_cells']}/"
        f"{kernel_coverage['total_cells']} E-grid cells vector-eligible "
        f"(PR-7 whitelist: {kernel_coverage['pr7_eligible_cells']}, "
        f"PR-6: {kernel_coverage['pr6_eligible_cells']})"
    )

    if args.gate:
        failures = (
            check_gate(horizon_grid)
            + check_shard_gate(shard_grid)
            + check_executor_gate(executor_grid)
            + check_recovery_gate(recovery_grid)
            + check_kernel_gate(kernel_grid)
            + check_kernel_family_gate(kernel_family_grid)
            + check_telemetry_gate(telemetry_grid)
            + check_coverage_gate(kernel_coverage)
        )
        if failures:
            for failure in failures:
                print(f"PERF GATE: {failure}", file=sys.stderr)
            return 1
        print(
            "perf gate: adaptive >= static on the largest cell, sharded == unsharded "
            "float-exact, shard speedup within contract, subprocess == pool == serial "
            "float-exact at every worker count, churned sweeps respawn and stay "
            "float-exact within the recovery wall-time limit, vector == event "
            "float-exact with the "
            "kernel speedup within contract on both grids, traced == untraced "
            "float-exact within the telemetry overhead limit, and E-grid eligibility "
            "coverage strictly above the PR-7 whitelist"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
