"""Write BENCH_PR3.json: the tracked perf baseline of the observation stack.

The canonical benchmark (successor of the PR-2 script) times a fixed
experiment grid three ways -- full trace (historical poll), metrics-only with
the static per-event round poll, and metrics-only with the adaptive horizon --
plus every reproduction experiment end to end.  CI's perf-smoke job runs it
with ``--quick --fail-if-adaptive-slower`` and uploads the JSON as an
artifact, so the bench trajectory is versioned alongside the code.

Usage::

    python scripts/bench.py [--quick] [--output BENCH_PR3.json]
                            [--repeats N] [--fail-if-adaptive-slower]

Timings always run against a cold result cache (caching is disabled for the
measured runs), so they measure simulation + observation, not cache reads.
Each grid cell reports the best of ``--repeats`` runs; the parity block
asserts the acceptance contract -- adaptive metrics values, including the
window-rate extremes, are float-for-float equal to the full-trace pipeline.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import platform
import sys
import time
from pathlib import Path

from repro.experiments import EXPERIMENTS
from repro.experiments.common import adversarial_scenario, default_params
from repro.runner.config import configure as configure_runner
from repro.workloads.scenarios import _measure_streamed, _resolve_check, build_cluster, run_scenario

#: Adaptive-vs-baseline tolerance for the CI gate.  The adaptive and static
#: paths do nearly identical work per event (the static poll is an O(1)
#: incremental read since PR 3), so sub-second cells are dominated by
#: scheduler noise on shared CI runners; the timing gate therefore applies
#: only to the largest grid cell (most signal) and allows this much noise.
#: Value parity, by contrast, is deterministic and gated on every cell.
GATE_TOLERANCE = 1.25


def time_experiments(quick: bool) -> dict:
    timings = {}
    for exp_id, experiment in EXPERIMENTS.items():
        start = time.perf_counter()
        experiment.run(quick=quick)
        timings[exp_id] = {
            "claim": experiment.claim,
            "wall_time_s": round(time.perf_counter() - start, 4),
        }
    return timings


def _best_of(repeats: int, fn):
    best_time = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best_time = min(best_time, time.perf_counter() - start)
    return best_time, result


def _run_pr2_style(scenario):
    """The PR-2 static-horizon path: poll an O(n) round scan after every event.

    Replicates (against today's recorder) exactly what ``run_until_round``
    cost before the incremental round tracking: a Python stop-condition
    closure that rescans every process's progress after each event.  This is
    the recorded baseline the adaptive horizon is measured against.
    """
    handles = build_cluster(scenario, trace_level="metrics")
    sim = handles.sim
    procs = sim.recorder._procs  # noqa: SLF001 - deliberate replica of the old scan
    target = scenario.rounds

    def pr2_poll(_sim) -> bool:
        worst = None
        for proc in procs.values():
            if proc.faulty:
                continue
            value = proc.max_round if proc.resync_count else 0
            if worst is None or value < worst:
                worst = value
        return (worst if worst is not None else 0) >= target

    sim.stop_condition = pr2_poll
    summary = sim.run_until(scenario.horizon())
    check = _resolve_check(scenario, None)
    return _measure_streamed(scenario, summary, check, stopped_early=sim.stopped_early)


def time_horizon_grid(quick: bool, repeats: int) -> dict:
    """Full vs metrics-static vs metrics-adaptive on an E9-style grid (to 6x n)."""
    rounds = 5 if quick else 12
    sizes = [7, 28] if quick else [7, 14, 28, 42]
    grid = {}
    for n in sizes:
        scenario = adversarial_scenario(
            default_params(n, authenticated=True),
            "auth",
            attack="skew_max",
            rounds=rounds,
            seed=100 + n,
        )
        modes = {
            "full": lambda s=scenario: run_scenario(s, trace_level="full"),
            "metrics_pr2_poll": lambda s=scenario: _run_pr2_style(s),
            "metrics_static": lambda s=dataclasses.replace(scenario, adaptive_horizon=False): run_scenario(
                s, trace_level="metrics"
            ),
            "metrics_adaptive": lambda s=dataclasses.replace(scenario, adaptive_horizon=True): run_scenario(
                s, trace_level="metrics"
            ),
        }
        entry = {}
        results = {}
        for mode, runner in modes.items():
            wall, result = _best_of(repeats, runner)
            results[mode] = result
            entry[mode] = {
                "wall_time_s": round(wall, 4),
                "precision": result.precision,
                "completed_round": result.completed_round,
                "effective_horizon": result.effective_horizon,
                "total_messages": result.total_messages,
            }
        full, adaptive, pr2 = results["full"], results["metrics_adaptive"], results["metrics_pr2_poll"]
        full_acc, fast_acc = full.accuracy, adaptive.accuracy
        entry["parity"] = {
            "precision_exact": adaptive.precision == full.precision,
            "effective_horizon_exact": adaptive.effective_horizon == full.effective_horizon,
            "window_rates_exact": (
                full_acc is not None
                and fast_acc is not None
                and fast_acc.slowest_window_rate == full_acc.slowest_window_rate
                and fast_acc.fastest_window_rate == full_acc.fastest_window_rate
            ),
            "pr2_poll_exact": (
                adaptive.precision == pr2.precision
                and adaptive.effective_horizon == pr2.effective_horizon
                and adaptive.completed_round == pr2.completed_round
            ),
        }
        adaptive_wall = max(entry["metrics_adaptive"]["wall_time_s"], 1e-9)
        entry["speedup_pr2_over_adaptive"] = round(
            entry["metrics_pr2_poll"]["wall_time_s"] / adaptive_wall, 3
        )
        entry["speedup_static_over_adaptive"] = round(
            entry["metrics_static"]["wall_time_s"] / adaptive_wall, 3
        )
        entry["speedup_full_over_adaptive"] = round(entry["full"]["wall_time_s"] / adaptive_wall, 3)
        grid[f"n={n}"] = entry
    return {"rounds": rounds, "repeats": repeats, "grid": grid}


def check_gate(horizon_grid: dict) -> list[str]:
    """Adaptive-horizon metrics runs must be at least as fast as static ones."""
    failures = []
    labels = list(horizon_grid["grid"])
    # Timing is gated on the largest cell only; tiny cells are pure noise.
    timing_label = max(labels, key=lambda label: int(label.split("=")[1]))
    for label, entry in horizon_grid["grid"].items():
        if label == timing_label:
            adaptive = entry["metrics_adaptive"]["wall_time_s"]
            for baseline in ("metrics_static", "metrics_pr2_poll"):
                wall = entry[baseline]["wall_time_s"]
                if adaptive > wall * GATE_TOLERANCE:
                    failures.append(
                        f"{label}: adaptive {adaptive:.4f}s slower than {baseline} {wall:.4f}s "
                        f"(tolerance x{GATE_TOLERANCE})"
                    )
        for name, ok in entry["parity"].items():
            if not ok:
                failures.append(f"{label}: parity check {name} failed")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small grids (CI smoke)")
    parser.add_argument("--output", default="BENCH_PR3.json", help="output path")
    parser.add_argument("--repeats", type=int, default=3, help="runs per grid cell (best-of)")
    parser.add_argument(
        "--fail-if-adaptive-slower",
        action="store_true",
        dest="gate",
        help="exit non-zero unless adaptive-horizon metrics runs are at least as fast "
        "as static-horizon runs (and value parity holds) on every grid cell",
    )
    args = parser.parse_args()

    # Cold-cache, serial timings: measure the work, not the cache or the pool.
    configure_runner(jobs=1, use_cache=False)

    horizon_grid = time_horizon_grid(args.quick, args.repeats)
    summary = {
        "schema": "bench/3",
        "quick": args.quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "experiments": time_experiments(args.quick),
        "horizon_grid": horizon_grid,
    }
    output = Path(args.output)
    output.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    total = sum(entry["wall_time_s"] for entry in summary["experiments"].values())
    print(f"wrote {output} ({len(summary['experiments'])} experiments, {total:.2f}s total)")
    for label, entry in horizon_grid["grid"].items():
        print(
            f"  {label}: full {entry['full']['wall_time_s']}s, "
            f"pr2-poll {entry['metrics_pr2_poll']['wall_time_s']}s, "
            f"static {entry['metrics_static']['wall_time_s']}s, "
            f"adaptive {entry['metrics_adaptive']['wall_time_s']}s "
            f"(x{entry['speedup_pr2_over_adaptive']} vs PR-2 poll), "
            f"parity {all(entry['parity'].values())}"
        )

    if args.gate:
        failures = check_gate(horizon_grid)
        if failures:
            for failure in failures:
                print(f"PERF GATE: {failure}", file=sys.stderr)
            return 1
        print("perf gate: adaptive >= static on every grid cell, parity exact")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
