#!/usr/bin/env python3
"""Operational lifecycle: cold start, steady state, and a node joining later.

Scenario: a 7-node cluster boots over a 100 ms window with unsynchronized
clocks (start-up protocol), runs for a few resynchronization rounds under an
active adversary, and at t = 3.3 s an eighth node comes up and integrates into
the running system.  The example prints the full timeline of
resynchronizations and verifies the start-up and join latency bounds.

Run with:  python examples/cluster_startup_and_join.py
"""

from __future__ import annotations

from repro import Scenario, params_for, run_scenario
from repro.analysis import metrics
from repro.analysis.report import Table
from repro.core.bounds import precision_bound
from repro.core.join import join_latency_bound, join_time
from repro.core.startup import startup_completion_bound


def main() -> None:
    boot_spread = 0.1
    join_at = 3.3
    params = params_for(7, authenticated=True, rho=1e-4, tdel=0.01, period=1.0,
                        initial_offset_spread=0.05)
    scenario = Scenario(
        params=params,
        algorithm="auth",
        attack="eager",
        rounds=6,
        clock_mode="extreme",
        delay_mode="uniform",
        use_startup=True,
        boot_spread=boot_spread,
        joiner_count=1,
        join_time=join_at,
        seed=8,
    )
    result = run_scenario(scenario, check_guarantees=False)
    trace = result.trace

    # Timeline of resynchronizations.
    timeline = Table(
        title="Resynchronization timeline (time in seconds, one column per process)",
        headers=["round"] + [f"p{pid}" for pid in trace.honest_pids()],
        precision=6,
    )
    rounds = sorted({e.round for p in trace.honest() for e in p.resyncs})
    for round_ in rounds:
        row: list[object] = [round_]
        for pid in trace.honest_pids():
            events = [e.time for e in trace.processes[pid].resyncs if e.round == round_]
            row.append(events[0] if events else "-")
        timeline.add_row(*row)
    print(timeline.render())
    print()

    # Start-up and join guarantees.  The start-up metrics are computed over
    # the original members only (the joiner is not part of the cold start).
    members = scenario.honest_pids
    summary = Table(title="Lifecycle guarantees", headers=["quantity", "measured", "bound", "holds"])
    synced_by = metrics.steady_state_start(trace, pids=members)
    startup_bound = startup_completion_bound(params, boot_spread, "auth")
    summary.add_row("all members synchronized by (s)", synced_by, startup_bound, synced_by <= startup_bound)

    settled_skew = metrics.skew_after_round(trace, 1, pids=members)
    settled_skew = float("inf") if settled_skew is None else settled_skew
    skew_bound = precision_bound(params, "auth")
    summary.add_row("member skew after first full round (s)", settled_skew, skew_bound, settled_skew <= skew_bound)

    joiner_pid = scenario.joiner_pids[0]
    latency = join_time(trace, joiner_pid, join_at)
    latency_bound = join_latency_bound(params, "auth")
    summary.add_row("join latency of p7 (s)", latency, latency_bound, latency <= latency_bound)

    joined_skew = metrics.max_skew(trace, t_start=trace.processes[joiner_pid].resyncs[0].time)
    summary.add_row("skew including the joiner (s)", joined_skew, skew_bound, joined_skew <= skew_bound)
    print(summary.render())


if __name__ == "__main__":
    main()
