#!/usr/bin/env python3
"""Parameter tuning: choosing a resynchronization period for a target skew.

A system designer typically has a fixed network (delay bound ``tdel``) and
oscillators (drift ``rho``) and wants to pick the resynchronization period
``P`` that meets a skew target with the least message overhead.  This example
tabulates the analytic trade-off (precision bound, message rate, accuracy
excess as functions of ``P``), verifies a chosen configuration by simulation
under the worst tolerated adversary, and shows what happens if the period is
pushed too far.

Run with:  python examples/parameter_tuning.py
"""

from __future__ import annotations

from repro import AUTH, Scenario, params_for, run_scenario, theoretical_bounds
from repro.analysis.report import Table
from repro.core.bounds import validate


def tradeoff_table(n: int, rho: float, tdel: float, periods: list[float]) -> Table:
    table = Table(
        title=f"Analytic trade-off for n={n}, rho={rho:g}, tdel={tdel:g}",
        headers=["period P (s)", "precision bound (ms)", "messages per second", "rate excess", "valid"],
    )
    for period in periods:
        params = params_for(n, authenticated=True, rho=rho, tdel=tdel, period=period)
        problems = validate(params, AUTH)
        if problems:
            table.add_row(period, float("nan"), float("nan"), float("nan"), False)
            continue
        bounds = theoretical_bounds(params, AUTH)
        messages_per_second = bounds.messages_per_round_total / bounds.beta_min
        table.add_row(
            period,
            bounds.precision * 1e3,
            messages_per_second,
            bounds.rate_max - params.max_rate,
            True,
        )
    table.add_note("precision degrades with P (more drift accumulates) while message and rate overhead shrink")
    return table


def verify_choice(n: int, rho: float, tdel: float, period: float, target_skew: float) -> Table:
    params = params_for(n, authenticated=True, rho=rho, tdel=tdel, period=period,
                        initial_offset_spread=tdel / 2)
    bounds = theoretical_bounds(params, AUTH)
    scenario = Scenario(
        params=params,
        algorithm="auth",
        attack="skew_max",
        rounds=15,
        clock_mode="extreme",
        delay_mode="targeted",
        seed=99,
    )
    result = run_scenario(scenario)
    table = Table(
        title=f"Verification of P={period} s against a {target_skew * 1e3:.1f} ms skew target",
        headers=["quantity", "value"],
    )
    table.add_row("analytic precision bound (ms)", bounds.precision * 1e3)
    table.add_row("measured worst-case skew (ms)", result.precision * 1e3)
    table.add_row("meets target", result.precision <= target_skew and bounds.precision <= target_skew)
    table.add_row("all guarantees hold", result.guarantees_hold)
    table.add_row("messages per round (measured)", result.messages_per_round)
    return table


def main() -> None:
    n, rho, tdel = 7, 1e-4, 0.01
    print(tradeoff_table(n, rho, tdel, periods=[0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0, 200.0]).render())
    print()
    print(verify_choice(n, rho, tdel, period=2.0, target_skew=0.05).render())


if __name__ == "__main__":
    main()
