#!/usr/bin/env python3
"""Byzantine attack gallery: what the adversary can and cannot do.

Runs both Srikanth-Toueg variants (authenticated, n > 2f; echo, n > 3f)
against every tolerated attack in the library and shows that the precision
bound holds; then runs each algorithm one fault above its threshold under the
corresponding "cabal" attack and shows how badly it breaks.

Run with:  python examples/byzantine_attack_demo.py
"""

from __future__ import annotations

from repro import Scenario, params_for, run_scenario
from repro.analysis.report import Table
from repro.core.bounds import AUTH, ECHO, precision_bound
from repro.faults.strategies import TOLERATED_ATTACKS, breaking_attack_for


def tolerated_attack_table(algorithm: str) -> Table:
    authenticated = algorithm == "auth"
    params = params_for(7, authenticated=authenticated, rho=1e-4, tdel=0.01, period=1.0,
                        initial_offset_spread=0.005)
    bound = precision_bound(params, AUTH if authenticated else ECHO)
    table = Table(
        title=f"{algorithm}: n=7, f={params.f} -- every tolerated attack",
        headers=["attack", "completed rounds", "measured skew (ms)", "bound (ms)", "within bound"],
    )
    for attack in TOLERATED_ATTACKS:
        scenario = Scenario(
            params=params,
            algorithm=algorithm,
            attack=attack,
            rounds=12,
            clock_mode="extreme",
            delay_mode="targeted",
            seed=abs(hash(attack)) % 1000,
        )
        result = run_scenario(scenario)
        table.add_row(attack, result.completed_round, result.precision * 1e3, bound * 1e3,
                      result.precision <= bound)
    return table


def breaking_attack_table() -> Table:
    table = Table(
        title="One fault above the threshold: the algorithms break (as the paper's optimality requires)",
        headers=["algorithm", "assumed f", "actual faults", "attack", "measured skew (s)", "bound (s)"],
    )
    for algorithm in ("auth", "echo"):
        authenticated = algorithm == "auth"
        params = params_for(7, authenticated=authenticated, rho=1e-4, tdel=0.01, period=1.0)
        attack = breaking_attack_for(AUTH if authenticated else ECHO)
        scenario = Scenario(
            params=params,
            algorithm=algorithm,
            attack=attack,
            actual_faults=params.f + 1,
            rounds=10,
            clock_mode="extreme",
            delay_mode="targeted",
            seed=13,
        )
        result = run_scenario(scenario, check_guarantees=False)
        bound = precision_bound(params, AUTH if authenticated else ECHO)
        table.add_row(algorithm, params.f, params.f + 1, attack, result.precision, bound)
    table.add_note("skew here exceeds the bound by orders of magnitude: resilience thresholds are tight")
    return table


def main() -> None:
    for algorithm in ("auth", "echo"):
        print(tolerated_attack_table(algorithm).render())
        print()
    print(breaking_attack_table().render())


if __name__ == "__main__":
    main()
