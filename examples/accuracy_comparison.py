#!/usr/bin/env python3
"""Accuracy comparison: why fault-tolerant synchronization with optimal accuracy matters.

The paper's headline is *optimal accuracy*: the synchronized clocks drift from
real time no faster than the underlying hardware, independent of how many
faults are tolerated.  This example contrasts:

* the two Srikanth-Toueg variants (optimal accuracy, Byzantine tolerant),
* Lundelius-Welch and Lamport-Melliar-Smith averaging (tolerant, n > 3f),
* naive sync-to-max (destroyed by a single lying clock source),
* free-running hardware clocks (the drift floor),

and shows how the Srikanth-Toueg rate excess vanishes as the period grows.

Run with:  python examples/accuracy_comparison.py
"""

from __future__ import annotations

from repro import Scenario, params_for, run_scenario
from repro.analysis.report import Table
from repro.core.bounds import AUTH, long_run_rate_bounds


def head_to_head_table() -> Table:
    table = Table(
        title="Head-to-head with one Byzantine process (n=7, f=1, 15 rounds)",
        headers=["algorithm", "attack", "precision (ms)", "worst |C(t)-t| (ms)", "long-run rate"],
    )
    cases = [
        ("auth", "eager"),
        ("echo", "eager"),
        ("lundelius_welch", "inflated_clock"),
        ("lamport_melliar_smith", "inflated_clock"),
        ("sync_to_max", "inflated_clock"),
        ("free_running", "silent"),
    ]
    for algorithm, attack in cases:
        params = params_for(7, f=1, authenticated=(algorithm == "auth"), rho=1e-4, tdel=0.01, period=1.0)
        scenario = Scenario(
            params=params,
            algorithm=algorithm,
            attack=attack,
            actual_faults=1,
            rounds=15,
            clock_mode="random",
            delay_mode="uniform",
            seed=21,
        )
        result = run_scenario(scenario, check_guarantees=False)
        offset = result.accuracy.worst_offset_from_real_time * 1e3 if result.accuracy else float("nan")
        rate = result.accuracy.fastest_long_run_rate if result.accuracy else float("nan")
        table.add_row(algorithm, attack, result.precision * 1e3, offset, rate)
    table.add_note("sync-to-max follows the lying clock; every fault-tolerant algorithm ignores it")
    return table


def rate_vs_period_table() -> Table:
    table = Table(
        title="Srikanth-Toueg accuracy excess vanishes as the period grows (auth, n=7, f=3)",
        headers=["period P (s)", "measured max rate", "analytic max rate", "hardware bound (1+rho)"],
    )
    for period in (0.5, 1.0, 2.0, 5.0):
        params = params_for(7, authenticated=True, rho=1e-4, tdel=0.01, period=period)
        scenario = Scenario(
            params=params,
            algorithm="auth",
            attack="silent",
            rounds=12,
            clock_mode="random",
            delay_mode="uniform",
            seed=int(period * 10),
        )
        result = run_scenario(scenario, check_guarantees=False)
        _, rate_max = long_run_rate_bounds(params, AUTH)
        measured = result.accuracy.fastest_long_run_rate if result.accuracy else float("nan")
        table.add_row(period, measured, rate_max, params.max_rate)
    table.add_note("fault tolerance costs nothing asymptotically: the excess is O(tdel / P), independent of f and n")
    return table


def main() -> None:
    print(head_to_head_table().render())
    print()
    print(rate_vs_period_table().render())


if __name__ == "__main__":
    main()
