#!/usr/bin/env python3
"""Quickstart: synchronize 7 clocks, 3 of which are Byzantine.

This example builds the worst-case tolerated configuration of the
authenticated Srikanth-Toueg algorithm (n = 7, f = 3 = ceil(n/2) - 1),
runs it against an active adversary, and compares the measured precision,
resynchronization period and clock rate against the analytic bounds.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import AUTH, Scenario, params_for, run_scenario, theoretical_bounds
from repro.analysis import skew_timeseries
from repro.analysis.report import Table


def main() -> None:
    # 1. Model parameters: 7 nodes, up to 3 Byzantine, 10 ms delay bound,
    #    1e-4 drift, resynchronization every second.
    params = params_for(n=7, authenticated=True, rho=1e-4, tdel=0.01, period=1.0,
                        initial_offset_spread=0.005)
    bounds = theoretical_bounds(params, AUTH)

    print("Model:", params.describe())
    print(f"Analytic precision bound Dmax   : {bounds.precision * 1e3:.3f} ms")
    print(f"Analytic period window          : [{bounds.beta_min:.4f}, {bounds.beta_max:.4f}] s")
    print(f"Analytic clock-rate window      : [{bounds.rate_min:.6f}, {bounds.rate_max:.6f}]")
    print()

    # 2. Run 20 resynchronization rounds with the harshest tolerated setup:
    #    extreme clock rates, targeted delays, and eager+two-faced Byzantine nodes.
    scenario = Scenario(
        params=params,
        algorithm="auth",
        attack="skew_max",
        rounds=20,
        clock_mode="extreme",
        delay_mode="targeted",
        seed=42,
    )
    result = run_scenario(scenario)

    # 3. Compare measurement against theory.
    table = Table(
        title="Measured vs analytic guarantees (n=7, f=3, skew_max adversary)",
        headers=["quantity", "measured", "bound", "holds"],
    )
    for check in result.guarantees.checks:
        table.add_row(check.name, check.measured, check.bound, check.holds)
    print(table.render())
    print()

    # 4. A coarse skew-over-time series (what a plot would show): flat, bounded.
    series = skew_timeseries(result.trace, samples=10)
    print("skew over time (ms):", " ".join(f"{skew * 1e3:.2f}" for _, skew in series))
    print()
    print("all guarantees hold:", result.guarantees_hold)


if __name__ == "__main__":
    main()
