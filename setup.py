"""Setuptools entry point.

Metadata lives in ``pyproject.toml``; the ``src/`` layout is declared here as
well so that ``pip install -e .`` works even with setuptools/pip stacks that
predate PEP 660 editable wheels (no ``wheel`` package available).
"""

from setuptools import find_packages, setup

setup(
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
