"""Setuptools entry point.

The project is fully described by ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments whose setuptools/pip stack
predates PEP 660 editable wheels (no ``wheel`` package available).
"""

from setuptools import setup

setup()
