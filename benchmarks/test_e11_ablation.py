"""Benchmark E11: ablations of the adjustment constant and the monotonic variant."""

from conftest import run_and_print


def test_e11_ablation(benchmark):
    alpha_table, monotonic_table = run_and_print(benchmark, "E11")
    bounds = alpha_table.column("bound Dmax")
    assert bounds == sorted(bounds), "a larger alpha implies a larger analytic bound"
    monotonic_rows = [row for row in monotonic_table.rows if row[1] is True or row[1] == "yes"]
    assert all(row[3] == 0.0 for row in monotonic_rows), "monotonic variant must never step back"
