"""Benchmark E2: optimal accuracy (rate envelope and its fault tolerance)."""

from conftest import run_and_print


def test_e02_accuracy(benchmark):
    rate_table, fault_table = run_and_print(benchmark, "E2")
    excesses = rate_table.column("measured excess")
    analytic = rate_table.column("analytic excess")
    assert all(m <= b + 1e-9 for m, b in zip(excesses, analytic))
    assert excesses[-1] <= excesses[0], "accuracy excess must shrink as the period grows"
    rows = {row[0]: row for row in fault_table.rows}
    assert rows["sync_to_max"][3] > 1.0, "sync-to-max should be wrecked by the lying clock"
    assert rows["auth"][3] < 0.1 and rows["echo"][3] < 0.1
