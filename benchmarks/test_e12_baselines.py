"""Benchmark E12: head-to-head comparison with the baseline synchronizers."""

from conftest import run_and_print


def test_e12_baselines(benchmark):
    (table,) = run_and_print(benchmark, "E12")
    rows = {row[0]: row for row in table.rows}
    # Fault-tolerant algorithms keep precision tight; sync-to-max is destroyed.
    assert rows["auth"][2] < 0.05
    assert rows["echo"][2] < 0.05
    assert rows["lundelius_welch"][2] < 0.05
    assert rows["lamport_melliar_smith"][2] < 0.05
    assert rows["sync_to_max"][2] > 1.0
    assert rows["free_running"][5] == 0
