"""Benchmark E5: resynchronization intervals stay within [beta_min, beta_max]."""

from conftest import run_and_print


def test_e05_period(benchmark):
    (table,) = run_and_print(benchmark, "E5")
    assert all(table.column("within bounds"))
