"""Benchmark E7: integration (join) latency of a late-starting process."""

from conftest import run_and_print


def test_e07_join(benchmark):
    (table,) = run_and_print(benchmark, "E7")
    assert all(table.column("joined"))
    assert all(table.column("in time"))
