"""Benchmark E6: start-up (initial synchronization) from an unsynchronized state."""

from conftest import run_and_print


def test_e06_startup(benchmark):
    (table,) = run_and_print(benchmark, "E6")
    assert all(table.column("in time")), "start-up exceeded the completion bound"
    assert all(table.column("within bound")), "post-start-up skew exceeded the precision bound"
