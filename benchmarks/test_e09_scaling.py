"""Benchmark E9: precision scales as O(tdel + rho * P)."""

from conftest import run_and_print


def test_e09_scaling(benchmark):
    tdel_table, drift_table = run_and_print(benchmark, "E9")
    skews = tdel_table.column("measured skew")
    assert skews == sorted(skews), "skew must grow with the delay bound"
    ratios = tdel_table.column("skew / tdel")
    assert max(ratios) <= 2.5 * min(ratios), "skew should grow roughly linearly in tdel"
    assert all(
        measured <= bound
        for measured, bound in zip(drift_table.column("measured skew"), drift_table.column("bound Dmax"))
    )
