"""Benchmark E1: precision of the authenticated algorithm at maximum resilience."""

from conftest import run_and_print


def test_e01_precision_auth(benchmark):
    (table,) = run_and_print(benchmark, "E1")
    assert all(table.column("within bound")), "measured skew exceeded the analytic bound"
