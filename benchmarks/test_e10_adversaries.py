"""Benchmark E10: all guarantees hold under every tolerated Byzantine strategy."""

from conftest import run_and_print


def test_e10_adversaries(benchmark):
    (table,) = run_and_print(benchmark, "E10")
    assert all(table.column("all guarantees hold"))
