"""Benchmark E13: shard plans never change replicated worst-case statistics."""

from conftest import run_and_print


def test_e13_shards(benchmark):
    invariance, scaling = run_and_print(benchmark, "E13")
    assert all(invariance.column("== 1 shard")), "sharded values must equal the unsharded fold"
    shard_counts = invariance.column("shards")
    assert shard_counts == sorted(shard_counts)
    skews = scaling.column("worst skew")
    assert skews == sorted(skews), "worst-case skew must be monotone in the replication superset"
    assert all(verdict == "hold" for verdict in scaling.column("guarantees"))
