"""Benchmark E4: tightness of the n > 3f resilience threshold (non-authenticated)."""

from conftest import run_and_print


def test_e04_resilience_echo(benchmark):
    (table,) = run_and_print(benchmark, "E4")
    for row in table.rows:
        assumed_f, actual, within = row[1], row[2], row[-1]
        if actual <= assumed_f:
            assert within, f"in-spec configuration violated the bound: {row}"
        else:
            assert not within, f"above-threshold attack failed to break the algorithm: {row}"
