"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one experiment from DESIGN.md (E1..E15):
it times the experiment runner via pytest-benchmark (a single round -- these
are macro-benchmarks of whole simulation sweeps, not micro-benchmarks) and
prints the resulting table(s) so that the harness output *is* the reproduced
table.  Qualitative expectations (who wins, what breaks, what stays within
bound) are asserted so a silently wrong reproduction fails the harness.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.analysis.report import Table, render_tables
from repro.experiments import EXPERIMENTS

#: ``REPRO_BENCH_QUICK=1`` switches every benchmark to the small quick-mode
#: grids -- the CI smoke job uses this so the qualitative reproduction
#: assertions run on every push without the full-sweep cost.
QUICK_DEFAULT = os.environ.get("REPRO_BENCH_QUICK", "").strip().lower() not in ("", "0", "false", "no", "off")


def run_and_print(benchmark, exp_id: str, quick: Optional[bool] = None) -> list[Table]:
    """Time one experiment once, print its tables, and return them."""
    if quick is None:
        quick = QUICK_DEFAULT
    experiment = EXPERIMENTS[exp_id]
    tables = benchmark.pedantic(experiment.run, args=(quick,), iterations=1, rounds=1)
    if isinstance(tables, Table):
        tables = [tables]
    print()
    print(f"[{exp_id}] {experiment.claim}")
    print(render_tables(tables))
    return tables
