"""Benchmark E15: fleet churn and autoscaling never change results.

The assertion layer over the E15 tables -- the bare CLI renders them but
only fails on table-generation errors, so the churn-invariance and
elasticity claims are gated here (and in ``tests/test_fleet.py`` and the
BENCH_PR10 recovery grid).
"""

from conftest import run_and_print


def test_e15_fleet(benchmark):
    churn, autoscale = run_and_print(benchmark, "E15")
    assert all(churn.column("completed")), "the sweep must complete despite continuous worker murder"
    assert all(churn.column("== serial")), "fleet churn must not change any measured value"
    assert all(killed >= 2 for killed in churn.column("workers killed")), (
        "the schedule must kill every initial worker at least once"
    )
    assert all(r >= 1 for r in churn.column("respawns")), "recovery must respawn, not just shrink"
    assert all(autoscale.column("completed"))
    assert all(autoscale.column("== serial")), "autoscaling must not change any measured value"
    assert all(up >= 1 for up in autoscale.column("scale-ups")), "backlog must trigger a scale-up"
    assert all(down >= 1 for down in autoscale.column("scale-downs")), "idle workers must be reaped"
