"""Benchmark E14: executor backends never change results, even across crashes."""

from conftest import run_and_print


def test_e14_executors(benchmark):
    invariance, recovery = run_and_print(benchmark, "E14")
    assert all(invariance.column("== serial")), "every backend must match the serial results float-for-float"
    backends = invariance.column("backend")
    assert "subprocess x2" in backends and "pool x2" in backends
    assert all(recovery.column("completed")), "the sweep must complete despite the killed worker"
    assert all(recovery.column("== serial")), "crash recovery must not change any measured value"
