"""Benchmark E8: message complexity per resynchronization round (O(n^2))."""

from conftest import run_and_print


def test_e08_messages(benchmark):
    (table,) = run_and_print(benchmark, "E8")
    assert all(table.column("within bound"))
    for algorithm in ("auth", "echo"):
        rows = [row for row in table.rows if row[0] == algorithm]
        measured = [row[3] for row in rows]
        assert measured == sorted(measured), "messages per round must grow with n"
