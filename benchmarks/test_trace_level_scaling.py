"""Benchmark: the metrics-only observation path on a 4x-scale E9-style grid.

The E1-E12 reproduction grids run at n = 7; this benchmark pushes an
E9-style precision-scaling scenario to n = 28 (four times the reproduction
scale) through ``trace_level="metrics"``.  Two properties are asserted:

* the measured worst-case skew still respects the analytic bound at scale,
* the streaming recorder's retained state is *identical* after short and
  long runs -- peak observation memory is O(n), independent of run length,
  which is what lets scaling sweeps grow beyond the full-trace ceiling.
"""

from conftest import QUICK_DEFAULT

from repro.core.bounds import AUTH, precision_bound
from repro.experiments.common import adversarial_scenario, default_params
from repro.sim.recorder import OnlineMetricsRecorder
from repro.workloads.scenarios import build_cluster, run_scenario

#: Four times the n = 7 grid every reproduction experiment runs at.
SCALED_N = 28


def _scaled_scenario(rounds: int, seed: int = 82):
    return adversarial_scenario(
        default_params(SCALED_N, authenticated=True),
        "auth",
        attack="skew_max",
        rounds=rounds,
        seed=seed,
    )


def test_metrics_only_scaling_run(benchmark):
    rounds = 4 if QUICK_DEFAULT else 12
    scenario = _scaled_scenario(rounds)
    result = benchmark.pedantic(
        run_scenario, args=(scenario,), kwargs={"trace_level": "metrics"}, iterations=1, rounds=1
    )
    assert result.trace is None
    assert result.completed_round >= rounds
    bound = precision_bound(result.params, AUTH)
    assert result.precision <= bound + 1e-9
    print(
        f"\n[trace-level scaling] n={SCALED_N} rounds={rounds}: "
        f"skew {result.precision:.6g} <= bound {bound:.6g}, "
        f"{result.total_messages} messages"
    )


def test_metrics_memory_constant_in_run_length(benchmark):
    """The streaming core's state is run-length independent.

    The one deliberate exception is the window-rate sample buffer (exact
    window extremes need the steady-window breakpoint samples): it grows with
    the number of *resynchronizations* -- two floats per adjustment, nothing
    per message -- and vanishes under ``window_rates=False``.  The core
    bookkeeping that is touched per event stays exactly constant.
    """
    short_rounds = 3 if QUICK_DEFAULT else 6
    long_rounds = 4 * short_rounds

    def observe(rounds: int) -> tuple[int, int]:
        scenario = _scaled_scenario(rounds)
        handles = build_cluster(scenario, trace_level="metrics")
        handles.sim.run_until_round(scenario.rounds, t_max=scenario.horizon(), adaptive=True)
        recorder = handles.sim.recorder
        assert isinstance(recorder, OnlineMetricsRecorder)
        return recorder.retained_state_size(), recorder.retained_window_samples()

    short_core, short_win = benchmark.pedantic(observe, args=(short_rounds,), iterations=1, rounds=1)
    long_core, long_win = observe(long_rounds)
    assert long_core == short_core, (
        f"streaming recorder core state grew with run length: {short_core} -> {long_core}"
    )
    # Window samples scale with resynchronization count only: 4x the rounds
    # must stay within ~4x the samples (never with the O(n^2)-per-round
    # message/event volume, which would be two orders of magnitude more).
    assert long_win <= 4 * short_win + 8 * SCALED_N, (
        f"window-rate samples grew faster than the resynchronization count: "
        f"{short_win} ({short_rounds} rounds) -> {long_win} ({long_rounds} rounds)"
    )

    print(
        f"\n[trace-level scaling] retained recorder entries at n={SCALED_N}: "
        f"core {short_core} ({short_rounds} rounds) == {long_core} ({long_rounds} rounds); "
        f"window samples {short_win} -> {long_win} (resync-bound)"
    )
