"""Benchmark E3: tightness of the n > 2f resilience threshold (authenticated)."""

from conftest import run_and_print


def test_e03_resilience_auth(benchmark):
    (table,) = run_and_print(benchmark, "E3")
    for row in table.rows:
        assumed_f, actual, within = row[1], row[2], row[-1]
        if actual <= assumed_f:
            assert within, f"in-spec configuration violated the bound: {row}"
        else:
            assert not within, f"above-threshold attack failed to break the algorithm: {row}"
